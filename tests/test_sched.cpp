// Tests for the scheduling framework: the policy interface defaults, the
// baseline policies, pair placement, and the thread manager's measurement
// methodology (targets, relaunch, turnaround, traces, migrations).
#include <gtest/gtest.h>

#include <set>

#include "apps/spec_suite.hpp"
#include "sched/baselines.hpp"
#include "sched/policy.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/chip.hpp"
#include "workloads/groups.hpp"

namespace {

using namespace synpa;
using namespace synpa::sched;

TaskObservation make_obs(int task, int core, int partner) {
    TaskObservation o;
    o.task_id = task;
    o.core = core;
    o.corunner_task_id = partner;
    return o;
}

TEST(Policy, DefaultInitialAllocationIsArrivalOrder) {
    LinuxPolicy linux_policy;
    const std::vector<int> ids = {10, 11, 12, 13, 14, 15, 16, 17};
    const PairAllocation a = linux_policy.initial_allocation(ids);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[0], std::make_pair(10, 14));  // paper: task k with task k+4
    EXPECT_EQ(a[3], std::make_pair(13, 17));
}

TEST(Policy, OddTaskCountRunsMiddleTaskAlone) {
    // The partial-allocation contract: odd N spreads like even N (task k
    // with task k + ceil(N/2)) and the unmatched middle task gets a core of
    // its own ({task, kNoTask}).
    LinuxPolicy linux_policy;
    const std::vector<int> ids = {1, 2, 3};
    const PairAllocation a = linux_policy.initial_allocation(ids);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], std::make_pair(1, 3));
    EXPECT_EQ(a[1], std::make_pair(2, kNoTask));
    EXPECT_THROW(linux_policy.initial_allocation(std::vector<int>{}), std::invalid_argument);
}

TEST(Policy, CoreAlignedCurrentAllocationKeepsIdleCores) {
    // Tasks on cores 0 and 2 of a 4-core chip: the core-aligned overload
    // reports idle cores in place, so re-applying it migrates nothing.
    std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                        make_obs(3, 2, -1)};
    const PairAllocation a = current_allocation(obs, 4);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[0], std::make_pair(1, 2));
    EXPECT_EQ(a[1], std::make_pair(kNoTask, kNoTask));
    EXPECT_EQ(a[2], std::make_pair(3, kNoTask));
    EXPECT_EQ(a[3], std::make_pair(kNoTask, kNoTask));
    // The legacy form (no core count) still compacts occupied cores only.
    const PairAllocation legacy = current_allocation(obs);
    ASSERT_EQ(legacy.size(), 2u);
}

TEST(Policy, PlaceOnCoresHandlesSinglesAndIdleCores) {
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                              make_obs(3, 1, -1)};
    const PairAllocation a = place_on_cores({{3, kNoTask}, {1, 2}}, obs, 4);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[1], std::make_pair(3, kNoTask));  // single kept its core
    EXPECT_EQ(a[0], std::make_pair(1, 2));        // pair kept its core
    EXPECT_EQ(a[2], std::make_pair(kNoTask, kNoTask));
    EXPECT_THROW(place_on_cores({{1, 2}, {3, kNoTask}}, obs, 1), std::invalid_argument);
}

TEST(Policy, CurrentAllocationReconstruction) {
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                              make_obs(3, 1, 4), make_obs(4, 1, 3)};
    const PairAllocation a = current_allocation(obs);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], std::make_pair(1, 2));
    EXPECT_EQ(a[1], std::make_pair(3, 4));
}

TEST(Policy, LinuxKeepsCurrentPairs) {
    LinuxPolicy linux_policy;
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                              make_obs(3, 1, 4), make_obs(4, 1, 3)};
    const PairAllocation a = linux_policy.reallocate(obs);
    EXPECT_EQ(a, current_allocation(obs));
}

TEST(Policy, PlacePairsPrefersIncumbentCores) {
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                              make_obs(3, 1, 4), make_obs(4, 1, 3)};
    // Re-pair (1,3) and (2,4): each pair should land on a core one of its
    // members already occupies.
    const PairAllocation a = place_pairs({{1, 3}, {2, 4}}, obs);
    ASSERT_EQ(a.size(), 2u);
    std::set<int> placed;
    for (const auto& [x, y] : a) {
        placed.insert(x);
        placed.insert(y);
    }
    EXPECT_EQ(placed, (std::set<int>{1, 2, 3, 4}));
    // Pair containing task 1 on core 0 (task 1 was there), pair with 4 on 1.
    EXPECT_TRUE(a[0].first == 1 || a[0].second == 1);
}

TEST(Policy, RandomPolicyProducesValidPermutations) {
    RandomPolicy random_policy(7);
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                              make_obs(3, 1, 4), make_obs(4, 1, 3)};
    bool changed = false;
    for (int round = 0; round < 16; ++round) {
        const PairAllocation a = random_policy.reallocate(obs);
        ASSERT_EQ(a.size(), 2u);
        std::set<int> seen;
        for (const auto& [x, y] : a) {
            EXPECT_NE(x, y);
            seen.insert(x);
            seen.insert(y);
        }
        EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
        if (a != current_allocation(obs)) changed = true;
    }
    EXPECT_TRUE(changed);  // random must actually shuffle sometimes
}

// ---------- thread manager ----------

uarch::SimConfig manager_config() {
    uarch::SimConfig cfg;
    cfg.cores = 2;  // 4 hardware threads
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

std::vector<TaskSpec> small_workload(std::uint64_t target_insts) {
    return {
        {.app_name = "nab_r", .seed = 1, .target_insts = target_insts, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = target_insts, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = target_insts, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = target_insts, .isolated_ipc = 1.7},
    };
}

TEST(ThreadManager, RequiresFullChip) {
    uarch::Chip chip(manager_config());
    LinuxPolicy policy;
    const std::vector<TaskSpec> three(3);
    EXPECT_THROW(ThreadManager(chip, policy, three), std::invalid_argument);
}

TEST(ThreadManager, RunsToCompletionAndReports) {
    uarch::Chip chip(manager_config());
    LinuxPolicy policy;
    const auto specs = small_workload(30'000);
    ThreadManager manager(chip, policy, specs);
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.policy_name, "linux");
    ASSERT_EQ(r.outcomes.size(), 4u);
    double max_finish = 0.0;
    for (const TaskOutcome& out : r.outcomes) {
        EXPECT_GT(out.finish_quantum, 0.0);
        EXPECT_GT(out.ipc_smt, 0.0);
        EXPECT_GT(out.individual_speedup, 0.0);
        // SMT cannot beat isolated execution in this contended setup.
        EXPECT_LT(out.individual_speedup, 1.15);
        const auto& f = out.mean_fractions;
        EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-6);
        max_finish = std::max(max_finish, out.finish_quantum);
    }
    EXPECT_DOUBLE_EQ(r.turnaround_quanta, max_finish);
    EXPECT_EQ(r.migrations, 0u);  // linux never migrates
}

TEST(ThreadManager, TracesCoverEveryQuantum) {
    uarch::Chip chip(manager_config());
    LinuxPolicy policy;
    ThreadManager manager(chip, policy, small_workload(20'000),
                          {.max_quanta = 10'000, .record_traces = true});
    const RunResult r = manager.run();
    ASSERT_EQ(r.traces.size(), 4u);
    for (const auto& trace : r.traces) {
        ASSERT_EQ(trace.size(), r.quanta_executed);
        for (const QuantumTrace& t : trace) {
            EXPECT_GE(t.corunner_slot, 0);  // fully loaded chip
            EXPECT_LT(t.corunner_slot, 4);
            EXPECT_NEAR(t.fractions[0] + t.fractions[1] + t.fractions[2], 1.0, 1e-6);
        }
    }
}

TEST(ThreadManager, RelaunchKeepsLoadConstant) {
    uarch::Chip chip(manager_config());
    LinuxPolicy policy;
    // Very different targets force early finishers to be relaunched.
    std::vector<TaskSpec> specs = small_workload(10'000);
    specs[1].target_insts = 200'000;  // mcf finishes last
    ThreadManager manager(chip, policy, specs);
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(chip.bound_tasks().size(), 4u);  // still fully loaded at the end
    // The slow task defines the turnaround.
    double mcf_finish = 0.0;
    for (const auto& out : r.outcomes)
        if (out.app_name == "mcf") mcf_finish = out.finish_quantum;
    EXPECT_DOUBLE_EQ(r.turnaround_quanta, mcf_finish);
}

TEST(ThreadManager, SafetyCapReportsIncomplete) {
    uarch::Chip chip(manager_config());
    LinuxPolicy policy;
    ThreadManager manager(chip, policy, small_workload(100'000'000),
                          {.max_quanta = 5, .record_traces = false});
    const RunResult r = manager.run();
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.quanta_executed, 5u);
}

TEST(ThreadManager, DeterministicAcrossRuns) {
    auto run_once = [] {
        uarch::Chip chip(manager_config());
        LinuxPolicy policy;
        ThreadManager manager(chip, policy, small_workload(25'000));
        return manager.run().turnaround_quanta;
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(ThreadManager, RandomPolicyCountsMigrations) {
    uarch::Chip chip(manager_config());
    RandomPolicy policy(3);
    ThreadManager manager(chip, policy, small_workload(25'000));
    const RunResult r = manager.run();
    EXPECT_GT(r.migrations, 0u);
}

TEST(OraclePolicyTest, ProducesValidAllocationsInManager) {
    workloads::calibrate_suite(manager_config(), 6, 1);
    uarch::Chip chip(manager_config());
    OraclePolicy policy{model::InterferenceModel::paper_table4()};
    ThreadManager manager(chip, policy, small_workload(20'000));
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.outcomes.size(), 4u);
}

}  // namespace

namespace {

using synpa::sched::SamplingPolicy;

TEST(SamplingPolicyTest, ExploresThenSettles) {
    synpa::uarch::Chip chip(manager_config());
    SamplingPolicy policy(5, {.explore_quanta = 3, .exploit_quanta = 10});
    synpa::sched::ThreadManager manager(chip, policy, small_workload(40'000));
    const synpa::sched::RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.policy_name, "sampling");
    // It must migrate during exploration but far less than pure random.
    EXPECT_GT(r.migrations, 0u);
    EXPECT_LT(static_cast<double>(r.migrations) /
                  static_cast<double>(r.quanta_executed),
              2.0);
}

TEST(SamplingPolicyTest, ProducesValidAllocationsEveryQuantum) {
    synpa::uarch::Chip chip(manager_config());
    SamplingPolicy policy(9);
    synpa::sched::ThreadManager manager(chip, policy, small_workload(20'000));
    const synpa::sched::RunResult r = manager.run();
    EXPECT_TRUE(r.completed);  // manager validates every allocation it applies
    ASSERT_EQ(r.outcomes.size(), 4u);
}

}  // namespace
