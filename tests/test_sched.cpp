// Tests for the scheduling framework: CoreGroup/CoreAllocation, the policy
// interface defaults, the baseline policies, group placement, the thread
// manager's measurement methodology (targets, relaunch, turnaround, traces,
// migrations), the SMT-1/SMT-2 golden regressions, SMT-4 task conservation,
// and the multi-chip platform path (topology-aware policies, cross-chip
// migration penalties).
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "apps/spec_suite.hpp"
#include "core/synpa_policy.hpp"
#include "sched/baselines.hpp"
#include "sched/policy.hpp"
#include "sched/thread_manager.hpp"
#include "sched/topology.hpp"
#include "uarch/platform.hpp"
#include "workloads/groups.hpp"

namespace {

using namespace synpa;
using namespace synpa::sched;

TaskObservation make_obs(int task, int core, int partner, int total_cores = 4,
                         int smt_ways = 2) {
    TaskObservation o;
    o.task_id = task;
    o.core = core;
    o.corunner_task_id = partner;
    if (partner >= 0) o.corunner_task_ids.push_back(partner);
    o.total_cores = total_cores;
    o.smt_ways = smt_ways;
    return o;
}

// ---------- CoreGroup & converters ----------

TEST(CoreGroupTest, OccupancyAndMembers) {
    const CoreGroup empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.occupancy(), 0);

    CoreGroup g{7, 9};
    EXPECT_EQ(g.occupancy(), 2);
    EXPECT_TRUE(g.contains(7));
    EXPECT_FALSE(g.contains(8));
    EXPECT_FALSE(g.contains(kNoTask));
    g.add(11);
    EXPECT_EQ(g.occupancy(), 3);
    ASSERT_EQ(g.members().size(), 3u);
    EXPECT_EQ(g.members()[2], 11);
    g.add(12);
    EXPECT_THROW(g.add(13), std::length_error);  // kMaxSmtWays slots
    EXPECT_THROW((CoreGroup{1, 2, 3, 4, 5}), std::length_error);
}

TEST(CoreGroupTest, GroupsFromPairsSpellsPartialEntries) {
    // The deprecated PairAllocation alias and its converters are gone; the
    // pair solvers reach place_groups through groups_from_pairs.
    const std::vector<CoreGroup> entries =
        groups_from_pairs({{1, 2}, {3, kNoTask}, {kNoTask, kNoTask}});
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0], (CoreGroup{1, 2}));
    EXPECT_EQ(entries[1], (CoreGroup{3}));
    EXPECT_TRUE(entries[2].empty());
}

// ---------- policy interface defaults ----------

TEST(Policy, DefaultInitialAllocationIsArrivalOrder) {
    LinuxPolicy linux_policy;
    const std::vector<int> ids = {10, 11, 12, 13, 14, 15, 16, 17};
    const CoreAllocation a = linux_policy.initial_allocation(ids);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[0], (CoreGroup{10, 14}));  // paper: task k with task k+4
    EXPECT_EQ(a[3], (CoreGroup{13, 17}));
}

TEST(Policy, InitialAllocationSpreadsAcrossWidths) {
    LinuxPolicy linux_policy;
    const std::vector<int> ids = {1, 2, 3, 4, 5, 6, 7, 8};
    // SMT-4: 8 tasks spread over ceil(8/4) = 2 cores, column-major.
    const CoreAllocation a = linux_policy.initial_allocation(ids, 4);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], (CoreGroup{1, 3, 5, 7}));
    EXPECT_EQ(a[1], (CoreGroup{2, 4, 6, 8}));
    // Partial last groups stay occupied-slots-first.
    const CoreAllocation b = linux_policy.initial_allocation(std::vector<int>{1, 2, 3, 4, 5}, 4);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0], (CoreGroup{1, 3, 5}));
    EXPECT_EQ(b[1], (CoreGroup{2, 4}));
    EXPECT_THROW(linux_policy.initial_allocation(ids, 0), std::invalid_argument);
    EXPECT_THROW(linux_policy.initial_allocation(ids, 5), std::invalid_argument);
}

TEST(Policy, OddTaskCountRunsMiddleTaskAlone) {
    // The partial-allocation contract: odd N spreads like even N (task k
    // with task k + ceil(N/2)) and the unmatched middle task gets a core of
    // its own.
    LinuxPolicy linux_policy;
    const std::vector<int> ids = {1, 2, 3};
    const CoreAllocation a = linux_policy.initial_allocation(ids);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], (CoreGroup{1, 3}));
    EXPECT_EQ(a[1], (CoreGroup{2}));
    EXPECT_THROW(linux_policy.initial_allocation(std::vector<int>{}), std::invalid_argument);
}

TEST(Policy, CoreAlignedCurrentAllocationKeepsIdleCores) {
    // Tasks on cores 0 and 2 of a 4-core chip: the core-aligned result
    // reports idle cores in place, so re-applying it migrates nothing.
    std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                        make_obs(3, 2, -1)};
    const CoreAllocation a = current_allocation(obs, 4);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[0], (CoreGroup{1, 2}));
    EXPECT_TRUE(a[1].empty());
    EXPECT_EQ(a[2], (CoreGroup{3}));
    EXPECT_TRUE(a[3].empty());
    // The legacy "driver predates total_cores" compact form is gone: the
    // core count is required.
    EXPECT_THROW(current_allocation(obs, 0), std::invalid_argument);
    EXPECT_THROW(current_allocation(obs, -1), std::invalid_argument);
}

TEST(Policy, PlaceGroupsHandlesSinglesAndIdleCores) {
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2), make_obs(2, 0, 1),
                                              make_obs(3, 1, -1)};
    const CoreAllocation a = place_groups({CoreGroup{3}, CoreGroup{1, 2}}, obs, 4);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[1], (CoreGroup{3}));      // single kept its core
    EXPECT_EQ(a[0], (CoreGroup{1, 2}));   // pair kept its core
    EXPECT_TRUE(a[2].empty());
    EXPECT_THROW(place_groups({CoreGroup{1, 2}, CoreGroup{3}}, obs, 1),
                 std::invalid_argument);
    // The pair spelling routes through the same placement.
    EXPECT_EQ(place_groups(groups_from_pairs({{3, kNoTask}, {1, 2}}), obs, 4), a);
}

TEST(Policy, CurrentAllocationReconstruction) {
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2, 2), make_obs(2, 0, 1, 2),
                                              make_obs(3, 1, 4, 2), make_obs(4, 1, 3, 2)};
    const CoreAllocation a = current_allocation(obs, 2);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], (CoreGroup{1, 2}));
    EXPECT_EQ(a[1], (CoreGroup{3, 4}));
}

TEST(Policy, LinuxKeepsCurrentGroups) {
    LinuxPolicy linux_policy;
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2, 2), make_obs(2, 0, 1, 2),
                                              make_obs(3, 1, 4, 2), make_obs(4, 1, 3, 2)};
    const CoreAllocation a = linux_policy.reallocate(obs);
    EXPECT_EQ(a, current_allocation(obs, 2));
}

TEST(Policy, PlacePairsPrefersIncumbentCores) {
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2, 2), make_obs(2, 0, 1, 2),
                                              make_obs(3, 1, 4, 2), make_obs(4, 1, 3, 2)};
    // Regroup (1,3) and (2,4): each pair should land on a core one of its
    // members already occupies.
    const CoreAllocation a = place_pairs({{1, 3}, {2, 4}}, obs);
    ASSERT_EQ(a.size(), 2u);
    std::set<int> placed;
    for (const CoreGroup& g : a)
        for (int id : g.members()) placed.insert(id);
    EXPECT_EQ(placed, (std::set<int>{1, 2, 3, 4}));
    // Group containing task 1 stays on core 0 (task 1 was there).
    EXPECT_TRUE(a[0].contains(1));
}

TEST(Policy, RandomPolicyProducesValidPermutations) {
    RandomPolicy random_policy(7);
    const std::vector<TaskObservation> obs = {make_obs(1, 0, 2, 2), make_obs(2, 0, 1, 2),
                                              make_obs(3, 1, 4, 2), make_obs(4, 1, 3, 2)};
    bool changed = false;
    for (int round = 0; round < 16; ++round) {
        const CoreAllocation a = random_policy.reallocate(obs);
        ASSERT_EQ(a.size(), 2u);
        std::set<int> seen;
        for (const CoreGroup& g : a) {
            EXPECT_EQ(g.occupancy(), 2);
            for (int id : g.members()) seen.insert(id);
        }
        EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
        if (a != current_allocation(obs, 2)) changed = true;
    }
    EXPECT_TRUE(changed);  // random must actually shuffle sometimes
}

TEST(Policy, RandomPolicySpreadsAtWidthFour) {
    // 6 tasks on a 2-core SMT-4 chip: the even spread forces 3+3, never 4+2.
    RandomPolicy random_policy(11);
    std::vector<TaskObservation> obs;
    for (int t = 1; t <= 6; ++t)
        obs.push_back(make_obs(t, (t - 1) / 3, -1, /*total_cores=*/2, /*smt_ways=*/4));
    for (int round = 0; round < 8; ++round) {
        const CoreAllocation a = random_policy.reallocate(obs);
        ASSERT_EQ(a.size(), 2u);
        std::set<int> seen;
        for (const CoreGroup& g : a) {
            EXPECT_EQ(g.occupancy(), 3);
            for (int id : g.members()) seen.insert(id);
        }
        EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4, 5, 6}));
    }
}

TEST(Policy, SamplingPolicyHandlesLeftoversAtWidthFour) {
    // Regression: 6 live tasks on a 2-core SMT-4 chip used to sample
    // floor(6/4) = 1 full group plus 2 leftover singles = 3 entries for 2
    // cores, and place_groups threw.  The even spread keeps it at 3+3.
    SamplingPolicy policy(3, {.explore_quanta = 2, .exploit_quanta = 4});
    std::vector<TaskObservation> obs;
    for (int t = 1; t <= 6; ++t)
        obs.push_back(make_obs(t, (t - 1) / 3, -1, /*total_cores=*/2, /*smt_ways=*/4));
    for (int round = 0; round < 12; ++round) {
        const CoreAllocation a = policy.reallocate(obs);
        ASSERT_EQ(a.size(), 2u);
        std::set<int> seen;
        for (const CoreGroup& g : a) {
            EXPECT_LE(g.occupancy(), 4);
            for (int id : g.members()) seen.insert(id);
        }
        EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4, 5, 6}));
    }
}

TEST(Policy, PoliciesRejectUnpopulatedTotalCores) {
    // total_cores is required now: a driver that forgets it gets a clear
    // diagnostic, not a division by zero.
    std::vector<TaskObservation> obs = {make_obs(1, 0, -1, /*total_cores=*/0)};
    EXPECT_THROW(observed_total_cores(obs), std::invalid_argument);
    RandomPolicy random_policy(1);
    EXPECT_THROW(random_policy.reallocate(obs), std::invalid_argument);
    SamplingPolicy sampling_policy(1);
    EXPECT_THROW(sampling_policy.reallocate(obs), std::invalid_argument);
}

// ---------- thread manager ----------

uarch::SimConfig manager_config() {
    uarch::SimConfig cfg;
    cfg.cores = 2;  // 4 hardware threads
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

std::vector<TaskSpec> small_workload(std::uint64_t target_insts) {
    return {
        {.app_name = "nab_r", .seed = 1, .target_insts = target_insts, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = target_insts, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = target_insts, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = target_insts, .isolated_ipc = 1.7},
    };
}

TEST(ThreadManager, RequiresFullChip) {
    uarch::Platform platform(manager_config());
    LinuxPolicy policy;
    const std::vector<TaskSpec> three(3);
    EXPECT_THROW(ThreadManager(platform, policy, three), std::invalid_argument);
}

TEST(ThreadManager, RunsToCompletionAndReports) {
    uarch::Platform platform(manager_config());
    LinuxPolicy policy;
    const auto specs = small_workload(30'000);
    ThreadManager manager(platform, policy, specs);
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.policy_name, "linux");
    ASSERT_EQ(r.outcomes.size(), 4u);
    double max_finish = 0.0;
    for (const TaskOutcome& out : r.outcomes) {
        EXPECT_GT(out.finish_quantum, 0.0);
        EXPECT_GT(out.ipc_smt, 0.0);
        EXPECT_GT(out.individual_speedup, 0.0);
        // SMT cannot beat isolated execution in this contended setup.
        EXPECT_LT(out.individual_speedup, 1.15);
        const auto& f = out.mean_fractions;
        EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-6);
        max_finish = std::max(max_finish, out.finish_quantum);
    }
    EXPECT_DOUBLE_EQ(r.turnaround_quanta, max_finish);
    EXPECT_EQ(r.migrations, 0u);  // linux never migrates
}

TEST(ThreadManager, TracesCoverEveryQuantum) {
    uarch::Platform platform(manager_config());
    LinuxPolicy policy;
    ThreadManager manager(platform, policy, small_workload(20'000),
                          {.max_quanta = 10'000, .record_traces = true});
    const RunResult r = manager.run();
    ASSERT_EQ(r.traces.size(), 4u);
    for (const auto& trace : r.traces) {
        ASSERT_EQ(trace.size(), r.quanta_executed);
        for (const QuantumTrace& t : trace) {
            EXPECT_GE(t.corunner_slot, 0);  // fully loaded chip
            EXPECT_LT(t.corunner_slot, 4);
            EXPECT_NEAR(t.fractions[0] + t.fractions[1] + t.fractions[2], 1.0, 1e-6);
        }
    }
}

TEST(ThreadManager, RelaunchKeepsLoadConstant) {
    uarch::Platform platform(manager_config());
    LinuxPolicy policy;
    // Very different targets force early finishers to be relaunched.
    std::vector<TaskSpec> specs = small_workload(10'000);
    specs[1].target_insts = 200'000;  // mcf finishes last
    ThreadManager manager(platform, policy, specs);
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(platform.bound_tasks().size(), 4u);  // still fully loaded at the end
    // The slow task defines the turnaround.
    double mcf_finish = 0.0;
    for (const auto& out : r.outcomes)
        if (out.app_name == "mcf") mcf_finish = out.finish_quantum;
    EXPECT_DOUBLE_EQ(r.turnaround_quanta, mcf_finish);
}

TEST(ThreadManager, SafetyCapReportsIncomplete) {
    uarch::Platform platform(manager_config());
    LinuxPolicy policy;
    ThreadManager manager(platform, policy, small_workload(100'000'000),
                          {.max_quanta = 5, .record_traces = false});
    const RunResult r = manager.run();
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.quanta_executed, 5u);
}

TEST(ThreadManager, DeterministicAcrossRuns) {
    auto run_once = [] {
        uarch::Platform platform(manager_config());
        LinuxPolicy policy;
        ThreadManager manager(platform, policy, small_workload(25'000));
        return manager.run().turnaround_quanta;
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(ThreadManager, RandomPolicyCountsMigrations) {
    uarch::Platform platform(manager_config());
    RandomPolicy policy(3);
    ThreadManager manager(platform, policy, small_workload(25'000));
    const RunResult r = manager.run();
    EXPECT_GT(r.migrations, 0u);
}

TEST(OraclePolicyTest, ProducesValidAllocationsInManager) {
    workloads::calibrate_suite(manager_config(), 6, 1);
    uarch::Platform platform(manager_config());
    OraclePolicy policy{model::InterferenceModel::paper_table4()};
    ThreadManager manager(platform, policy, small_workload(20'000));
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.outcomes.size(), 4u);
}

}  // namespace

namespace {

using synpa::sched::SamplingPolicy;

TEST(SamplingPolicyTest, ExploresThenSettles) {
    synpa::uarch::Platform platform(manager_config());
    SamplingPolicy policy(5, {.explore_quanta = 3, .exploit_quanta = 10});
    synpa::sched::ThreadManager manager(platform, policy, small_workload(40'000));
    const synpa::sched::RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.policy_name, "sampling");
    // It must migrate during exploration but far less than pure random.
    EXPECT_GT(r.migrations, 0u);
    EXPECT_LT(static_cast<double>(r.migrations) /
                  static_cast<double>(r.quanta_executed),
              2.0);
}

TEST(SamplingPolicyTest, ProducesValidAllocationsEveryQuantum) {
    synpa::uarch::Platform platform(manager_config());
    SamplingPolicy policy(9);
    synpa::sched::ThreadManager manager(platform, policy, small_workload(20'000));
    const synpa::sched::RunResult r = manager.run();
    EXPECT_TRUE(r.completed);  // manager validates every allocation it applies
    ASSERT_EQ(r.outcomes.size(), 4u);
}

}  // namespace

// ---------- golden regression: SMT-2 is bit-identical pre/post redesign --

namespace {

using namespace synpa;
using namespace synpa::sched;

std::vector<TaskSpec> golden_workload() {
    return {
        {.app_name = "nab_r", .seed = 1, .target_insts = 30'000, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = 30'000, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = 30'000, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = 30'000, .isolated_ipc = 1.7},
        {.app_name = "leela_r", .seed = 5, .target_insts = 30'000, .isolated_ipc = 1.1},
        {.app_name = "hmmer", .seed = 6, .target_insts = 30'000, .isolated_ipc = 1.9},
        {.app_name = "lbm_r", .seed = 7, .target_insts = 30'000, .isolated_ipc = 0.8},
        {.app_name = "astar", .seed = 8, .target_insts = 30'000, .isolated_ipc = 1.2},
    };
}

struct GoldenRun {
    double turnaround;
    std::uint64_t quanta;
    std::uint64_t migrations;
    std::array<double, 8> finish;  ///< per-slot fractional finish quantum
};

RunResult golden_run(AllocationPolicy& policy) {
    uarch::SimConfig cfg;
    cfg.cores = 4;
    cfg.cycles_per_quantum = 4'000;
    uarch::Platform platform(cfg);
    ThreadManager manager(platform, policy, golden_workload());
    return manager.run();
}

void expect_golden(const RunResult& r, const GoldenRun& want) {
    ASSERT_TRUE(r.completed);
    // Exact double comparisons on purpose: the values below were captured
    // from the pre-redesign (PairAllocation) engine, and the width-generic
    // rewrite must not perturb a single bit of the SMT-2 simulation.
    EXPECT_EQ(r.turnaround_quanta, want.turnaround);
    EXPECT_EQ(r.quanta_executed, want.quanta);
    EXPECT_EQ(r.migrations, want.migrations);
    ASSERT_EQ(r.outcomes.size(), want.finish.size());
    for (const TaskOutcome& out : r.outcomes)
        EXPECT_EQ(out.finish_quantum, want.finish[static_cast<std::size_t>(out.slot_index)])
            << "slot " << out.slot_index;
}

TEST(GoldenSmt2, LinuxBitIdenticalToPreRedesignEngine) {
    LinuxPolicy policy;
    expect_golden(golden_run(policy),
                  {.turnaround = 18.498396407953816,
                   .quanta = 19,
                   .migrations = 0,
                   .finish = {3.7516593613024423, 16.542796005706133, 12.192352711666016,
                              5.6086633203197618, 9.3313414998506126, 18.498396407953816,
                              12.242548217416715, 10.50165990409443}});
}

TEST(GoldenSmt2, SynpaBitIdenticalToPreRedesignEngine) {
    core::SynpaPolicy policy{model::InterferenceModel::paper_table4()};
    expect_golden(golden_run(policy),
                  {.turnaround = 18.498396407953816,
                   .quanta = 19,
                   .migrations = 0,
                   .finish = {3.7516593613024423, 16.542796005706133, 12.192352711666016,
                              5.6086633203197618, 9.3313414998506126, 18.498396407953816,
                              12.242548217416715, 10.50165990409443}});
}

TEST(GoldenSmt2, MigratingSynpaBitIdenticalToPreRedesignEngine) {
    // The workload above never tempts SYNPA away from the Linux layout
    // (hysteresis keeps the incumbent pairing; migrations == 0), so it
    // cannot catch a regression in the decision path itself.  This variant
    // pairs the memory hogs together at t=0 (Linux pairs slot k with k+4)
    // and runs the paper's plain re-solve configuration (no hysteresis):
    // the pre-redesign engine migrated 82 times, exercising the estimator
    // inversion, the weight matrix, the matcher, and incumbent placement
    // every quantum.
    uarch::SimConfig cfg;
    cfg.cores = 4;
    cfg.cycles_per_quantum = 4'000;
    const std::vector<TaskSpec> specs = {
        {.app_name = "mcf", .seed = 1, .target_insts = 60'000, .isolated_ipc = 0.6},
        {.app_name = "lbm_r", .seed = 2, .target_insts = 60'000, .isolated_ipc = 0.8},
        {.app_name = "leela_r", .seed = 3, .target_insts = 60'000, .isolated_ipc = 1.1},
        {.app_name = "gobmk", .seed = 4, .target_insts = 60'000, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 5, .target_insts = 60'000, .isolated_ipc = 1.7},
        {.app_name = "mcf", .seed = 6, .target_insts = 60'000, .isolated_ipc = 0.6},
        {.app_name = "exchange2_r", .seed = 7, .target_insts = 60'000, .isolated_ipc = 2.0},
        {.app_name = "nab_r", .seed = 8, .target_insts = 60'000, .isolated_ipc = 2.0},
    };
    core::SynpaPolicy::Options opts;
    opts.stability_bias = 0.0;
    opts.keep_threshold = 0.0;
    core::SynpaPolicy policy{model::InterferenceModel::paper_table4(), opts};
    uarch::Platform platform(cfg);
    ThreadManager manager(platform, policy, specs);
    expect_golden(manager.run(),
                  {.turnaround = 35.397286821705428,
                   .quanta = 36,
                   .migrations = 82,
                   .finish = {33.638052530429214, 24.728987993138936, 21.223791821561338,
                              24.095081967213115, 16.841225626740947, 35.397286821705428,
                              11.57241082939407, 11.000177967609895}});
}

TEST(GoldenSmt2, RandomBitIdenticalToPreRedesignEngine) {
    // Random regroups every quantum, exercising the shuffle, the forced-
    // sharing split, and incumbent-core placement — the paths most reworked
    // by the width generalization.
    RandomPolicy policy(7);
    expect_golden(golden_run(policy),
                  {.turnaround = 20.423059255856682,
                   .quanta = 21,
                   .migrations = 71,
                   .finish = {4.1899877526025717, 18.29414951245937, 12.073105298457412,
                              6.2467710909590544, 10.201826045170591, 20.423059255856682,
                              16.856540084388186, 11.159541188738269}});
}

// ---------- SMT-4 ----------

TEST(Smt4, ClosedSystemConservesTasksAcrossPolicies) {
    // A 2-core SMT-4 chip running 8 threads: every quantum's allocation is
    // validated as a permutation of the live set (bind_allocation throws
    // otherwise), and the chip must stay saturated to the finish line.
    uarch::SimConfig cfg;
    cfg.cores = 2;
    cfg.smt_ways = 4;
    cfg.cycles_per_quantum = 4'000;

    const auto run_with = [&](AllocationPolicy& policy) {
        uarch::Platform platform(cfg);
        std::vector<TaskSpec> specs;
        for (const TaskSpec& s : golden_workload()) specs.push_back(s);
        ThreadManager manager(platform, policy, specs);
        const RunResult r = manager.run();
        EXPECT_TRUE(r.completed) << policy.name();
        EXPECT_EQ(r.outcomes.size(), 8u) << policy.name();
        EXPECT_EQ(platform.bound_tasks().size(), 8u) << policy.name();  // still full
        for (const TaskOutcome& out : r.outcomes)
            EXPECT_GT(out.finish_quantum, 0.0) << policy.name();
        return r;
    };

    LinuxPolicy linux_policy;
    run_with(linux_policy);
    RandomPolicy random_policy(5);
    const RunResult random_run = run_with(random_policy);
    EXPECT_GT(random_run.migrations, 0u);
    core::SynpaPolicy synpa_policy{model::InterferenceModel::paper_table4()};
    run_with(synpa_policy);
    SamplingPolicy sampling_policy(7, {.explore_quanta = 2, .exploit_quanta = 6});
    run_with(sampling_policy);
}

TEST(Smt1, ClosedSystemRunsWithoutCorunners) {
    // SMT disabled in BIOS: one thread per core, no pairs to train against
    // at eval width (the trainer widens its own co-run chip), no grouping
    // decision, and never a reason to migrate.
    uarch::SimConfig cfg;
    cfg.cores = 4;
    cfg.smt_ways = 1;
    cfg.cycles_per_quantum = 4'000;
    uarch::Platform platform(cfg);
    core::SynpaPolicy policy{model::InterferenceModel::paper_table4()};
    std::vector<TaskSpec> specs = golden_workload();
    specs.resize(4);  // 4 cores x 1 way
    ThreadManager manager(platform, policy, specs);
    const RunResult r = manager.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.migrations, 0u);
    for (const auto& trace : r.traces)
        for (const QuantumTrace& t : trace) EXPECT_EQ(t.corunner_slot, -1);
}

TEST(GoldenSmt1, ClosedRunBitIdenticalAcrossPolicies) {
    // Width-1 determinism golden: the PR-3 goldens cover widths 2 and 4
    // only.  With SMT off there is no grouping decision, so linux and synpa
    // must agree bit-for-bit — and both must stay pinned to the captured
    // engine values (exact doubles on purpose).
    uarch::SimConfig cfg;
    cfg.cores = 4;
    cfg.smt_ways = 1;
    cfg.cycles_per_quantum = 4'000;
    const std::vector<TaskSpec> specs = {
        {.app_name = "nab_r", .seed = 1, .target_insts = 30'000, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = 30'000, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = 30'000, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = 30'000, .isolated_ipc = 1.7},
    };
    const std::array<double, 4> want_finish = {3.017916456970307, 9.7104734576757537,
                                               8.7401021711366536, 3.7727873183619551};
    const auto run_with = [&](AllocationPolicy& policy) {
        uarch::Platform platform(cfg);
        ThreadManager manager(platform, policy, specs);
        const RunResult r = manager.run();
        ASSERT_TRUE(r.completed) << policy.name();
        EXPECT_EQ(r.turnaround_quanta, 9.7104734576757537) << policy.name();
        EXPECT_EQ(r.quanta_executed, 10u) << policy.name();
        EXPECT_EQ(r.migrations, 0u) << policy.name();
        ASSERT_EQ(r.outcomes.size(), 4u) << policy.name();
        for (const TaskOutcome& out : r.outcomes)
            EXPECT_EQ(out.finish_quantum,
                      want_finish[static_cast<std::size_t>(out.slot_index)])
                << policy.name() << " slot " << out.slot_index;
    };
    LinuxPolicy linux_policy;
    run_with(linux_policy);
    core::SynpaPolicy synpa_policy{model::InterferenceModel::paper_table4()};
    run_with(synpa_policy);
}

TEST(Smt4, SingleThreadKeepsFullRobShare) {
    // Satellite fix: the ROB partitions by *active* threads, so one thread
    // on an SMT-4 core sees the whole window, and width does not matter.
    uarch::SimConfig cfg;
    cfg.smt_ways = 4;
    EXPECT_EQ(cfg.rob_share(1), cfg.rob_size);
    EXPECT_EQ(cfg.rob_share(2), cfg.rob_size / 2);
    EXPECT_EQ(cfg.rob_share(4), cfg.rob_size / 4);
    cfg.smt_ways = 2;
    EXPECT_EQ(cfg.rob_share(1), cfg.rob_size);
}

}  // namespace

// ---------- multi-chip platform ----------

namespace {

using namespace synpa;
using namespace synpa::sched;

TEST(Multichip, ObservedTopologyAndBalancing) {
    // Four tasks crowded onto chip 0 of a 2-chip/2-core platform: with a
    // negligible migration penalty the balancer must ship enough of them to
    // chip 1 to close the gap; with a prohibitive penalty it must not move
    // anything.
    std::vector<TaskObservation> obs;
    for (int t = 1; t <= 4; ++t) {
        TaskObservation o;
        o.task_id = t;
        o.core = (t - 1) / 2;  // chip 0 cores 0 and 1
        o.chip = 0;
        o.smt_ways = 2;
        o.num_chips = 2;
        o.total_cores = 4;
        obs.push_back(o);
    }
    const TopologyView topo = observed_topology(obs);
    EXPECT_EQ(topo.chips, 2);
    EXPECT_EQ(topo.cores_per_chip, 2);
    EXPECT_EQ(topo.capacity_per_chip(), 4);

    const SoloCost solo = [](std::size_t) { return 1.0; };
    const PairCost pair = [](std::size_t, std::size_t) { return 3.0; };
    const std::vector<int> moved = balance_across_chips(obs, topo, solo, pair, 0.01);
    int on_chip1 = 0;
    for (const int c : moved) on_chip1 += c == 1;
    EXPECT_EQ(on_chip1, 2);  // 4/0 balances to 2/2

    const std::vector<int> kept = balance_across_chips(obs, topo, solo, pair, 100.0);
    for (const int c : kept) EXPECT_EQ(c, 0);  // penalty forbids every move
}

TEST(Multichip, BalancerLeavesSoloCapableChipAlone) {
    // Regression: 4 tasks on the 4 cores of chip 0 of a 2-chip platform,
    // one per core — nobody co-runs, so there is no benefit to shipping
    // anyone across the socket.  The source-chip cost must count the task
    // itself as a resident (4 residents on 4 cores = everyone solo), not
    // price it at a phantom SMT pairing.
    std::vector<TaskObservation> obs;
    for (int t = 1; t <= 4; ++t) {
        TaskObservation o;
        o.task_id = t;
        o.core = t - 1;  // chip 0, one task per core
        o.chip = 0;
        o.smt_ways = 2;
        o.num_chips = 2;
        o.total_cores = 8;
        obs.push_back(o);
    }
    const TopologyView topo = observed_topology(obs);
    const SoloCost solo = [](std::size_t) { return 1.0; };
    const PairCost pair = [](std::size_t, std::size_t) { return 3.0; };
    const std::vector<int> target = balance_across_chips(obs, topo, solo, pair, 0.01);
    for (const int c : target) EXPECT_EQ(c, 0);  // solo everywhere; no move pays
}

TEST(Multichip, ClosedSystemConservesTasksAcrossPolicies) {
    // 2 chips x 2 cores x 2 ways = 8 hardware threads: every policy must
    // drive the full platform to completion through the chip-qualified
    // global core ids, and the closed system must keep it saturated.
    uarch::SimConfig cfg;
    cfg.num_chips = 2;
    cfg.cores = 2;
    cfg.cycles_per_quantum = 4'000;

    const auto run_with = [&](AllocationPolicy& policy) {
        uarch::Platform platform(cfg);
        ThreadManager manager(platform, policy, golden_workload());
        const RunResult r = manager.run();
        EXPECT_TRUE(r.completed) << policy.name();
        EXPECT_EQ(r.outcomes.size(), 8u) << policy.name();
        EXPECT_EQ(platform.bound_tasks().size(), 8u) << policy.name();
        uarch::validate_platform(platform);
        return r;
    };

    LinuxPolicy linux_policy;
    const RunResult linux_run = run_with(linux_policy);
    EXPECT_EQ(linux_run.migrations, 0u);
    EXPECT_EQ(linux_run.cross_chip_migrations, 0u);

    RandomPolicy random_policy(5);
    const RunResult random_run = run_with(random_policy);
    EXPECT_GT(random_run.migrations, 0u);
    // Random shuffles the whole global core space, so some of its churn
    // crosses the chip boundary and pays the big penalty.
    EXPECT_GT(random_run.cross_chip_migrations, 0u);

    core::SynpaPolicy synpa_policy{model::InterferenceModel::paper_table4()};
    const RunResult synpa_run = run_with(synpa_policy);
    // The topology-aware decomposition keeps a balanced closed system's
    // regrouping within chips: informed migrations never pay cross-chip.
    EXPECT_EQ(synpa_run.cross_chip_migrations, 0u);
}

TEST(Multichip, CrossChipRebindDegradesIpcForConfiguredQuanta) {
    // The acceptance contract of the migration-cost model: after a
    // cross-chip rebind the task runs visibly slower for about
    // cross_chip_warmup_quanta quanta, then recovers; a same-chip rebind
    // of the control task costs (much) less.
    uarch::SimConfig cfg;
    cfg.num_chips = 2;
    cfg.cores = 2;
    cfg.cycles_per_quantum = 4'000;
    cfg.cross_chip_warmup_quanta = 2;
    cfg.cross_chip_miss_multiplier = 3.0;
    uarch::Platform platform(cfg);

    apps::AppInstance task(1, apps::find_app("mcf"), 7);
    platform.bind(task, {.core = 0, .slot = 0});
    const auto ipc_of_quantum = [&] {
        const std::uint64_t before = task.insts_retired();
        platform.run_quantum();
        return static_cast<double>(task.insts_retired() - before) /
               static_cast<double>(cfg.cycles_per_quantum);
    };
    double warm_ipc = 0.0;
    for (int q = 0; q < 6; ++q) warm_ipc = ipc_of_quantum();  // settle

    platform.unbind(1);
    platform.bind(task, {.core = 2, .slot = 0});  // chip 0 -> chip 1
    EXPECT_EQ(platform.cross_chip_migrations(), 1u);
    EXPECT_DOUBLE_EQ(task.warmup_multiplier(), 3.0);  // cold at peak

    // Regression: a cheap same-chip core move must not truncate the live
    // cross-chip window (caches are no warmer for having moved again).
    platform.unbind(1);
    platform.bind(task, {.core = 3, .slot = 0});  // another core of chip 1
    EXPECT_EQ(platform.cross_chip_migrations(), 1u);  // still only one
    EXPECT_DOUBLE_EQ(task.warmup_multiplier(), 3.0);  // window kept

    const double cold_ipc = ipc_of_quantum();
    EXPECT_LT(cold_ipc, 0.9 * warm_ipc);  // visibly degraded
    double recovered = 0.0;
    for (int q = 0; q < 6; ++q) recovered = ipc_of_quantum();
    EXPECT_DOUBLE_EQ(task.warmup_multiplier(), 1.0);  // window over
    EXPECT_GT(recovered, cold_ipc);

    platform.unbind(1);
}

}  // namespace
