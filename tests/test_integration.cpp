// End-to-end integration tests (includes the umbrella header to keep it
// compiling): train a model on the simulator, run a mixed
// workload under every policy, and check the system-level invariants the
// paper's evaluation relies on.
#include <gtest/gtest.h>

#include <memory>

#include "synpa.hpp"

#include "core/synpa_policy.hpp"
#include "metrics/metrics.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

namespace {

using namespace synpa;

/// Small-but-real scales so the full pipeline runs in seconds.
uarch::SimConfig integration_config() {
    uarch::SimConfig cfg;
    cfg.cycles_per_quantum = 8'000;
    return cfg;
}

model::TrainingResult& shared_model() {
    static model::TrainingResult result = [] {
        model::TrainerOptions opts;
        opts.isolated_quanta = 30;
        opts.pair_quanta = 12;
        opts.threads = 1;
        const std::vector<std::string> apps = {"mcf",   "lbm_r", "leela_r", "gobmk",
                                               "nab_r", "bwaves"};
        return model::Trainer(integration_config(), opts).train(apps);
    }();
    return result;
}

TEST(Integration, TrainedModelHasPaperLikeStructure) {
    const model::TrainingResult& r = shared_model();
    // Own-behaviour dominates every category (beta near or above 1)...
    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
        EXPECT_GT(r.model.coefficients(static_cast<model::Category>(c)).beta, 0.7);
    // ...and the backend category is the noisiest fit, as in the paper.
    EXPECT_GE(r.mse[2], r.mse[0]);
    // Predicting a pair of equal tasks yields a slowdown above 1.
    const model::CategoryVector mixed = {0.4, 0.3, 0.3};
    EXPECT_GT(r.model.predict_slowdown(mixed, mixed), 1.05);
}

TEST(Integration, FullWorkloadUnderEveryPolicy) {
    const uarch::SimConfig cfg = integration_config();
    workloads::MethodologyOptions opts;
    opts.reps = 1;
    opts.target_isolated_quanta = 15;
    opts.max_quanta = 4'000;
    workloads::calibrate_suite(cfg, 6, 1);

    const workloads::WorkloadSpec spec = workloads::paper_fb2();
    const model::InterferenceModel& m = shared_model().model;

    const std::vector<workloads::PolicyFactory> factories = {
        [](std::uint64_t) { return std::make_unique<sched::LinuxPolicy>(); },
        [](std::uint64_t s) { return std::make_unique<sched::RandomPolicy>(s); },
        [&](std::uint64_t) { return std::make_unique<sched::OraclePolicy>(m); },
        [&](std::uint64_t) { return std::make_unique<core::SynpaPolicy>(m); },
    };

    std::vector<metrics::WorkloadMetrics> results;
    for (const auto& factory : factories) {
        const workloads::RepeatedResult r = workloads::run_workload(spec, cfg, factory, opts);
        ASSERT_TRUE(r.exemplar.completed) << r.policy;
        ASSERT_EQ(r.exemplar.outcomes.size(), 8u) << r.policy;
        EXPECT_GT(r.mean_metrics.turnaround_quanta, 0.0);
        EXPECT_GT(r.mean_metrics.fairness, 0.4);
        EXPECT_LE(r.mean_metrics.fairness, 1.0);
        for (double s : r.mean_metrics.individual_speedups) {
            EXPECT_GT(s, 0.15);
            EXPECT_LT(s, 1.2);  // SMT cannot beat isolated by much
        }
        results.push_back(r.mean_metrics);
    }

    // Informed policies must not lose badly to random churn.
    const double random_tt = results[1].turnaround_quanta;
    EXPECT_LE(results[3].turnaround_quanta, random_tt * 1.05);  // synpa
    EXPECT_LE(results[0].turnaround_quanta, random_tt * 1.05);  // linux
}

TEST(Integration, WholeRunIsDeterministic) {
    const uarch::SimConfig cfg = integration_config();
    workloads::MethodologyOptions opts;
    opts.reps = 1;
    opts.target_isolated_quanta = 10;
    opts.record_traces = false;
    const model::InterferenceModel& m = shared_model().model;
    const workloads::PolicyFactory synpa_factory = [&](std::uint64_t) {
        return std::make_unique<core::SynpaPolicy>(m);
    };
    const auto a =
        workloads::run_workload(workloads::paper_fe2(), cfg, synpa_factory, opts);
    const auto b =
        workloads::run_workload(workloads::paper_fe2(), cfg, synpa_factory, opts);
    EXPECT_DOUBLE_EQ(a.mean_metrics.turnaround_quanta, b.mean_metrics.turnaround_quanta);
    EXPECT_DOUBLE_EQ(a.mean_metrics.ipc_geomean, b.mean_metrics.ipc_geomean);
    EXPECT_EQ(a.exemplar.migrations, b.exemplar.migrations);
}

TEST(Integration, PolicyBehaviourIsIndependentOfTraceRecording) {
    const uarch::SimConfig cfg = integration_config();
    workloads::MethodologyOptions with_traces, without_traces;
    with_traces.reps = without_traces.reps = 1;
    with_traces.target_isolated_quanta = without_traces.target_isolated_quanta = 10;
    with_traces.record_traces = true;
    without_traces.record_traces = false;
    const workloads::PolicyFactory linux_factory = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };
    const auto a =
        workloads::run_workload(workloads::paper_be1(), cfg, linux_factory, with_traces);
    const auto b =
        workloads::run_workload(workloads::paper_be1(), cfg, linux_factory, without_traces);
    EXPECT_DOUBLE_EQ(a.mean_metrics.turnaround_quanta, b.mean_metrics.turnaround_quanta);
}

}  // namespace
