// Tests for the PMU substrate: event metadata, counter banks, and the
// perf-like per-task session semantics.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"
#include "pmu/perf_session.hpp"

namespace {

using namespace synpa::pmu;

TEST(Events, NamesAreUniqueAndNonEmpty) {
    std::set<std::string_view> names;
    for (std::size_t i = 0; i < kEventCount; ++i) {
        const auto name = event_name(static_cast<Event>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
        EXPECT_TRUE(names.insert(name).second) << name;
    }
}

TEST(Events, TableOneEventsPresent) {
    EXPECT_EQ(event_name(Event::kCpuCycles), "cpu_cycles");
    EXPECT_EQ(event_name(Event::kInstSpec), "inst_spec");
    EXPECT_EQ(event_name(Event::kStallFrontend), "stall_frontend");
    EXPECT_EQ(event_name(Event::kStallBackend), "stall_backend");
    EXPECT_EQ(kSynpaEvents.size(), 4u);
}

TEST(Events, DescriptionsMatchTableOneWording) {
    EXPECT_EQ(event_description(Event::kCpuCycles), "Cycles");
    EXPECT_NE(event_description(Event::kStallFrontend).find("no operation"),
              std::string_view::npos);
}

TEST(CounterBank, IncrementAndRead) {
    CounterBank b;
    EXPECT_EQ(b.value(Event::kCpuCycles), 0u);
    b.increment(Event::kCpuCycles);
    b.increment(Event::kInstSpec, 10);
    EXPECT_EQ(b.value(Event::kCpuCycles), 1u);
    EXPECT_EQ(b.value(Event::kInstSpec), 10u);
}

TEST(CounterBank, DeltaSince) {
    CounterBank a, b;
    a.increment(Event::kCpuCycles, 100);
    b = a;
    a.increment(Event::kCpuCycles, 50);
    a.increment(Event::kStallBackend, 7);
    const CounterBank d = a.delta_since(b);
    EXPECT_EQ(d.value(Event::kCpuCycles), 50u);
    EXPECT_EQ(d.value(Event::kStallBackend), 7u);
    EXPECT_EQ(d.value(Event::kInstSpec), 0u);
}

TEST(CounterBank, ResetAndAccumulate) {
    CounterBank a, b;
    a.increment(Event::kBrMisPred, 3);
    b.increment(Event::kBrMisPred, 4);
    a += b;
    EXPECT_EQ(a.value(Event::kBrMisPred), 7u);
    a.reset();
    EXPECT_EQ(a.value(Event::kBrMisPred), 0u);
}

/// Test double for the chip.
class FakeSource final : public CounterSource {
public:
    CounterBank task_counters(int task_id) const override {
        const auto it = banks.find(task_id);
        if (it == banks.end()) throw std::logic_error("unknown task");
        return it->second;
    }
    std::map<int, CounterBank> banks;
};

TEST(PerfSession, AttachReadDeltaSemantics) {
    FakeSource src;
    src.banks[1].increment(Event::kCpuCycles, 1000);
    PerfSession session(src);
    session.attach(1);
    src.banks[1].increment(Event::kCpuCycles, 500);
    const CounterBank d1 = session.read(1);
    EXPECT_EQ(d1.value(Event::kCpuCycles), 500u);
    const CounterBank d2 = session.read(1);
    EXPECT_EQ(d2.value(Event::kCpuCycles), 0u);  // snapshot advanced
}

TEST(PerfSession, PeekDoesNotAdvance) {
    FakeSource src;
    src.banks[1];
    PerfSession session(src);
    session.attach(1);
    src.banks[1].increment(Event::kInstSpec, 42);
    EXPECT_EQ(session.peek(1).value(Event::kInstSpec), 42u);
    EXPECT_EQ(session.read(1).value(Event::kInstSpec), 42u);
}

TEST(PerfSession, EventFilterRestrictsReads) {
    FakeSource src;
    src.banks[1].increment(Event::kCpuCycles, 5);
    src.banks[1].increment(Event::kBrMisPred, 5);
    PerfSession session(src, {Event::kCpuCycles});
    session.attach(1);
    src.banks[1].increment(Event::kCpuCycles, 5);
    src.banks[1].increment(Event::kBrMisPred, 5);
    const CounterBank d = session.read(1);
    EXPECT_EQ(d.value(Event::kCpuCycles), 5u);
    EXPECT_EQ(d.value(Event::kBrMisPred), 0u);  // filtered out
}

TEST(PerfSession, UnattachedTaskThrows) {
    FakeSource src;
    PerfSession session(src);
    EXPECT_THROW(session.read(9), std::runtime_error);
    EXPECT_THROW(session.peek(9), std::runtime_error);
    EXPECT_FALSE(session.attached(9));
}

TEST(PerfSession, TaskReplacementDoesNotInheritStaleSnapshots) {
    // Regression: the manager relaunches finished tasks, and a counter
    // source may reuse an id for the fresh instance whose cumulative
    // counters restart from zero.  Re-attaching across the replacement must
    // rebaseline the snapshot — reads after it must report only the new
    // instance's deltas, never a wrapped difference against the old task's
    // (larger) cumulative values.
    FakeSource src;
    src.banks[1].increment(Event::kCpuCycles, 10'000);
    src.banks[1].increment(Event::kInstSpec, 5'000);
    PerfSession session(src);
    session.attach(1);
    src.banks[1].increment(Event::kCpuCycles, 500);
    EXPECT_EQ(session.read(1).value(Event::kCpuCycles), 500u);

    // The task finishes; a fresh instance takes over id 1 from zero.
    src.banks[1] = CounterBank{};
    src.banks[1].increment(Event::kCpuCycles, 42);
    session.detach(1);
    session.attach(1);

    src.banks[1].increment(Event::kCpuCycles, 8);
    src.banks[1].increment(Event::kInstSpec, 3);
    const CounterBank d = session.read(1);
    EXPECT_EQ(d.value(Event::kCpuCycles), 8u);  // not 42, and no wrap-around
    EXPECT_EQ(d.value(Event::kInstSpec), 3u);

    // attach() on an already-attached id also rebaselines (same guarantee
    // without the detach).
    src.banks[1] = CounterBank{};
    src.banks[1].increment(Event::kInstSpec, 7);
    session.attach(1);
    src.banks[1].increment(Event::kInstSpec, 2);
    EXPECT_EQ(session.read(1).value(Event::kInstSpec), 2u);
}

TEST(PerfSession, DetachForgetsSnapshot) {
    FakeSource src;
    src.banks[1];
    PerfSession session(src);
    session.attach(1);
    EXPECT_TRUE(session.attached(1));
    session.detach(1);
    EXPECT_FALSE(session.attached(1));
    EXPECT_THROW(session.read(1), std::runtime_error);
}

}  // namespace
