// The parallel quantum engine's two contracts:
//
//  1. Coverage — ParallelQuantumEngine runs every chip exactly once per
//     quantum regardless of the (sim_threads, num_chips) shape, and shard
//     failures surface as exceptions at the barrier.
//  2. Bit-identity — a Platform with sim_threads=N reproduces the
//     sim_threads=1 run EXACTLY (every double compared by bit pattern),
//     for closed and open scenarios, SMT widths 2 and 4, 1-4 chips, and
//     N in {1, 2, 4}; and a scenario grid nested inside its own thread
//     pool stays deterministic when cells themselves request sim threads.
//
// These tests are also the TSan surface for the parallel region: the CI
// thread-sanitizer job runs this binary, so any cross-chip data race the
// engine might introduce is caught structurally even on hosts where the
// interleaving never corrupts a result.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/artifact_cache.hpp"
#include "exp/scenario_grid.hpp"
#include "model/interference_model.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/parallel_engine.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

// ------------------------------------------------------------- coverage --

TEST(ParallelQuantumEngine, EveryChipRunsExactlyOnce) {
    for (const int chips : {1, 2, 3, 4, 7}) {
        for (const int threads : {1, 2, 3, 4, 8}) {
            uarch::ParallelQuantumEngine engine(threads, chips);
            EXPECT_LE(engine.shard_count(), chips);
            EXPECT_GE(engine.shard_count(), 1);

            std::vector<std::atomic<int>> runs(static_cast<std::size_t>(chips));
            engine.run_chips([&runs](int c) {
                runs[static_cast<std::size_t>(c)].fetch_add(1, std::memory_order_relaxed);
            });
            for (int c = 0; c < chips; ++c)
                EXPECT_EQ(runs[static_cast<std::size_t>(c)].load(), 1)
                    << "chips=" << chips << " threads=" << threads << " chip=" << c;
        }
    }
}

TEST(ParallelQuantumEngine, ReusableAcrossQuanta) {
    uarch::ParallelQuantumEngine engine(4, 4);
    std::atomic<int> total{0};
    for (int q = 0; q < 50; ++q)
        engine.run_chips([&total](int) { total.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(total.load(), 200);
}

TEST(ParallelQuantumEngine, ShardExceptionReachesTheBarrier) {
    uarch::ParallelQuantumEngine engine(4, 4);
    ASSERT_GT(engine.shard_count(), 1);
    EXPECT_THROW(engine.run_chips([](int c) {
        if (c == 3) throw std::runtime_error("chip 3 failed");
    }),
                 std::runtime_error);
    // The engine survives a failed quantum.
    std::atomic<int> total{0};
    engine.run_chips([&total](int) { total.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(total.load(), 4);
}

// --------------------------------------------------------- bit-identity --

/// Exact bit pattern of a double — string-formatted doubles would hide
/// low-bit drift, which is precisely what this suite must catch.
std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

uarch::SimConfig shape_config(int chips, int smt_ways, int sim_threads) {
    uarch::SimConfig cfg;
    cfg.cores = 2;
    cfg.smt_ways = smt_ways;
    cfg.num_chips = chips;
    cfg.sim_threads = sim_threads;
    cfg.cycles_per_quantum = 2'000;
    return cfg;
}

sched::PolicyConfig policy_config(std::uint64_t seed = 17) {
    sched::PolicyConfig config;
    config.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    config.seed = seed;
    return config;
}

std::vector<sched::TaskSpec> closed_specs(int count) {
    const std::vector<std::string> apps = {"mcf",     "leela_r", "nab_r", "bwaves",
                                           "gobmk",   "hmmer",   "lbm_r", "astar",
                                           "povray_r"};
    std::vector<sched::TaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({.app_name = apps[static_cast<std::size_t>(i) % apps.size()],
                         .seed = static_cast<std::uint64_t>(i + 1),
                         .target_insts = 12'000,
                         .isolated_ipc = 1.0});
    return specs;
}

std::string signature(const sched::RunResult& r) {
    std::string sig = std::to_string(r.quanta_executed) + "/" +
                      std::to_string(r.migrations) + "/" +
                      std::to_string(r.cross_chip_migrations) + "/" +
                      std::to_string(bits(r.turnaround_quanta));
    for (const sched::TaskOutcome& out : r.outcomes)
        sig += ";" + std::to_string(out.slot_index) + ":" +
               std::to_string(bits(out.finish_quantum)) + ":" +
               std::to_string(bits(out.ipc_smt)) + ":" + std::to_string(out.final_core);
    return sig;
}

std::string signature(const scenario::ScenarioResult& r) {
    std::string sig = std::to_string(r.quanta_executed) + "/" +
                      std::to_string(r.migrations) + "/" +
                      std::to_string(r.cross_chip_migrations) + "/" +
                      std::to_string(r.completed_tasks);
    for (const scenario::TaskRecord& rec : r.tasks)
        sig += ";" + std::to_string(rec.task_id) + ":" +
               std::to_string(rec.admit_quantum) + ":" +
               std::to_string(bits(rec.finish_quantum)) + ":" +
               std::to_string(bits(rec.slowdown)) + ":" + std::to_string(rec.chip_id);
    return sig;
}

std::string run_closed(int chips, int smt_ways, int sim_threads,
                       const std::string& policy_name) {
    const uarch::SimConfig cfg = shape_config(chips, smt_ways, sim_threads);
    uarch::Platform platform(cfg);
    const auto policy = sched::make_policy(policy_name, policy_config());
    const auto specs = closed_specs(platform.hw_contexts());
    sched::ThreadManager manager(platform, *policy, specs,
                                 {.max_quanta = 400, .record_traces = false});
    return signature(manager.run());
}

TEST(ParallelBitIdentity, ClosedRunsMatchSerialAtEveryThreadCount) {
    for (const int smt_ways : {2, 4}) {
        for (const int chips : {1, 2, 3, 4}) {
            const std::string want = run_closed(chips, smt_ways, 1, "synpa");
            for (const int threads : {2, 4}) {
                EXPECT_EQ(run_closed(chips, smt_ways, threads, "synpa"), want)
                    << "chips=" << chips << " ways=" << smt_ways
                    << " threads=" << threads;
            }
        }
    }
}

TEST(ParallelBitIdentity, ClosedRandomPolicyChurnMatchesSerial) {
    // Random regroups every quantum — maximal migration churn across chips,
    // so the cross-chip warmup bookkeeping gets exercised hard.
    const std::string want = run_closed(4, 2, 1, "random");
    EXPECT_EQ(run_closed(4, 2, 2, "random"), want);
    EXPECT_EQ(run_closed(4, 2, 4, "random"), want);
}

scenario::ScenarioSpec open_spec() {
    scenario::ScenarioSpec spec;
    spec.name = "parallel-open";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r"};
    spec.initial_tasks = 8;
    spec.arrival_rate = 0.8;
    spec.service_quanta = 5;
    spec.horizon_quanta = 25;
    spec.seed = 9;
    return spec;
}

TEST(ParallelBitIdentity, OpenScenarioMatchesSerialAtEveryThreadCount) {
    for (const int smt_ways : {2, 4}) {
        const uarch::SimConfig base = shape_config(4, smt_ways, 1);
        const scenario::ScenarioTrace trace = scenario::build_trace(open_spec(), base);

        std::string want;
        for (const int threads : {1, 2, 4}) {
            const uarch::SimConfig cfg = shape_config(4, smt_ways, threads);
            uarch::Platform platform(cfg);
            const auto policy = sched::make_policy("synpa", policy_config());
            scenario::ScenarioRunner runner(platform, *policy, trace,
                                            {.max_quanta = 400, .record_timeline = false});
            const std::string sig = signature(runner.run());
            if (threads == 1)
                want = sig;
            else
                EXPECT_EQ(sig, want) << "ways=" << smt_ways << " threads=" << threads;
        }
        ASSERT_FALSE(want.empty());
    }
}

TEST(ParallelBitIdentity, ConfigFingerprintIgnoresSimThreads) {
    // Cached artifacts must be shared across thread counts — the results
    // they key are identical by the contract this file pins.
    const uarch::SimConfig serial = shape_config(4, 2, 1);
    uarch::SimConfig parallel = serial;
    parallel.sim_threads = 4;
    EXPECT_EQ(uarch::config_fingerprint(serial), uarch::config_fingerprint(parallel));
    uarch::SimConfig other = serial;
    other.num_chips = 2;
    EXPECT_NE(uarch::config_fingerprint(serial), uarch::config_fingerprint(other));
}

TEST(ParallelBitIdentity, NestedSimThreadsCapsAgainstOuterPool) {
    EXPECT_EQ(uarch::nested_sim_threads(1, 8), 1);   // serial request stays serial
    EXPECT_EQ(uarch::nested_sim_threads(4, 1), 4);   // no outer fan-out: keep all
    EXPECT_EQ(uarch::nested_sim_threads(4, 0), 4);
    // With outer fan-out, the inner request is capped to the host's fair
    // share — min(requested, max(1, hw / outer)) — so campaign workers never
    // oversubscribe the machine with nested sim shards.
    const int hw = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    for (const std::size_t outer : {std::size_t{2}, std::size_t{4}, std::size_t{16}}) {
        const int capped = uarch::nested_sim_threads(4, outer);
        EXPECT_EQ(capped,
                  std::min(4, std::max(1, hw / static_cast<int>(outer))))
            << "outer=" << outer;
    }
}

TEST(ParallelBitIdentity, ScenarioGridNestedInPoolStaysDeterministic) {
    // A grid fanning out over its own pool while every cell's config asks
    // for sim threads: the composition rule (nested_sim_threads capping)
    // plus the reorder buffer must keep results bit-identical to the
    // all-serial run.
    const auto run_grid = [](std::size_t grid_threads, int sim_threads) {
        exp::ScenarioCampaign campaign;
        campaign.name = "nested-determinism";
        uarch::SimConfig cfg = shape_config(2, 2, sim_threads);
        campaign.configs = {cfg};
        scenario::ScenarioSpec spec = open_spec();
        spec.initial_tasks = 4;
        spec.horizon_quanta = 15;
        campaign.scenarios = {spec};
        campaign.policy_names = {"random"};
        campaign.reps = 3;
        campaign.max_quanta = 300;
        campaign.record_timelines = false;

        exp::ArtifactCache cache;
        exp::ScenarioGridRunner runner({.threads = grid_threads}, &cache);
        const exp::ScenarioGridResult result = runner.run(campaign);
        std::string sig;
        for (const exp::ScenarioCellResult& cell : result.cells)
            for (const scenario::ScenarioResult& run : cell.runs)
                sig += signature(run) + "|";
        return sig;
    };

    const std::string serial = run_grid(1, 1);
    EXPECT_EQ(run_grid(4, 1), serial);
    EXPECT_EQ(run_grid(4, 4), serial);  // nested request composes, same bits
    EXPECT_EQ(run_grid(1, 4), serial);  // parallel platform under a serial grid
}

}  // namespace
