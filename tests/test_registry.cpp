// Tests for the string-keyed policy registry (sched/registry.hpp): lookup
// and error behaviour, plus a parameterized sweep instantiating *every*
// registered policy by name and driving it through a small closed and open
// scenario at SMT widths 2 and 4, checking task conservation and run
// determinism.  A policy that can be named can be run — nothing in the
// registry is allowed to be wiring-only.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "model/interference_model.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/platform.hpp"
#include "workloads/groups.hpp"

namespace {

using namespace synpa;

uarch::SimConfig test_config(int smt_ways) {
    uarch::SimConfig cfg;
    cfg.cores = smt_ways == 4 ? 2 : 4;  // 8 hardware threads either way
    cfg.smt_ways = smt_ways;
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

sched::PolicyConfig test_policy_config(std::uint64_t seed = 11) {
    sched::PolicyConfig config;
    config.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    config.seed = seed;
    return config;
}

std::vector<sched::TaskSpec> closed_specs() {
    return {
        {.app_name = "nab_r", .seed = 1, .target_insts = 24'000, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = 24'000, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = 24'000, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = 24'000, .isolated_ipc = 1.7},
        {.app_name = "leela_r", .seed = 5, .target_insts = 24'000, .isolated_ipc = 1.1},
        {.app_name = "hmmer", .seed = 6, .target_insts = 24'000, .isolated_ipc = 1.9},
        {.app_name = "lbm_r", .seed = 7, .target_insts = 24'000, .isolated_ipc = 0.8},
        {.app_name = "astar", .seed = 8, .target_insts = 24'000, .isolated_ipc = 1.2},
    };
}

scenario::ScenarioSpec open_spec() {
    scenario::ScenarioSpec spec;
    spec.name = "registry-open";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r"};
    spec.initial_tasks = 4;
    spec.arrival_rate = 0.4;
    spec.service_quanta = 6;
    spec.horizon_quanta = 30;
    spec.seed = 5;
    return spec;
}

/// The oracle policy needs calibrated per-phase categories; calibrate once
/// per config shape, cheaply.
void ensure_calibrated(const uarch::SimConfig& cfg) {
    static std::set<int> done;
    if (done.insert(cfg.smt_ways).second) workloads::calibrate_suite(cfg, 4, 1);
}

/// Compact run signature for determinism comparisons (exact doubles).
std::string run_signature(const scenario::ScenarioResult& result) {
    std::string sig = std::to_string(result.quanta_executed) + "/" +
                      std::to_string(result.migrations);
    for (const scenario::TaskRecord& rec : result.tasks) {
        sig += ";" + std::to_string(rec.task_id) + ":" +
               std::to_string(rec.finish_quantum) + ":" +
               std::to_string(rec.admit_quantum);
    }
    return sig;
}

class RegistryPolicyTest : public ::testing::TestWithParam<sched::PolicyInfo> {};

TEST(PolicyRegistry, TableAndLookup) {
    const auto policies = sched::registered_policies();
    ASSERT_FALSE(policies.empty());
    std::set<std::string> names;
    for (const sched::PolicyInfo& info : policies) {
        EXPECT_TRUE(names.insert(std::string(info.name)).second)
            << "duplicate registry entry: " << info.name;
        EXPECT_EQ(sched::find_policy(info.name), &info);
        EXPECT_FALSE(info.objective.empty());
    }
    EXPECT_NE(sched::find_policy("synpa"), nullptr);
    EXPECT_EQ(sched::find_policy("definitely-not-a-policy"), nullptr);
}

TEST(PolicyRegistry, UnknownNameThrowsWithInventory) {
    try {
        sched::make_policy("nope", test_policy_config());
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The message must teach the caller the valid names.
        EXPECT_NE(std::string(e.what()).find("synpa-adaptive"), std::string::npos);
    }
}

TEST(PolicyRegistry, ModelRequiredForModelBasedPolicies) {
    sched::PolicyConfig no_model;
    for (const sched::PolicyInfo& info : sched::registered_policies()) {
        if (info.needs_model) {
            EXPECT_THROW(sched::make_policy(info.name, no_model), std::invalid_argument)
                << info.name;
        } else {
            EXPECT_NE(sched::make_policy(info.name, no_model), nullptr) << info.name;
        }
    }
}

TEST(PolicyRegistry, AdaptiveFlagMatchesOnlineInterface) {
    for (const sched::PolicyInfo& info : sched::registered_policies()) {
        const auto policy = sched::make_policy(info.name, test_policy_config());
        const bool online = dynamic_cast<sched::OnlinePolicy*>(policy.get()) != nullptr;
        EXPECT_EQ(online, info.adaptive) << info.name;
    }
}

TEST_P(RegistryPolicyTest, RunsClosedAndOpenAtBothWidthsDeterministically) {
    const sched::PolicyInfo info = GetParam();
    for (const int width : {2, 4}) {
        const uarch::SimConfig cfg = test_config(width);
        ensure_calibrated(cfg);

        // Closed: the paper's methodology shape (full chip, relaunches).
        const scenario::ScenarioTrace closed =
            scenario::closed_trace("registry-closed", closed_specs());
        // Open: Poisson arrivals with queueing and partial allocations.
        const scenario::ScenarioTrace open = scenario::build_trace(open_spec(), cfg);

        for (const scenario::ScenarioTrace* trace : {&closed, &open}) {
            std::vector<std::string> signatures;
            for (int run = 0; run < 2; ++run) {
                uarch::Platform platform(cfg);
                const auto policy = sched::make_policy(info.name, test_policy_config());
                scenario::ScenarioRunner runner(platform, *policy, *trace,
                                                {.max_quanta = 3'000});
                const scenario::ScenarioResult result = runner.run();

                // Conservation: every planned task is accounted for, and
                // completed tasks carry consistent bookkeeping.
                ASSERT_EQ(result.tasks.size(), trace->tasks.size())
                    << info.name << " width " << width;
                EXPECT_TRUE(result.completed) << info.name << " width " << width;
                std::set<int> ids;
                for (const scenario::TaskRecord& rec : result.tasks) {
                    if (!rec.completed) continue;
                    EXPECT_TRUE(ids.insert(rec.task_id).second)
                        << "duplicate task id under " << info.name;
                    EXPECT_GE(rec.finish_quantum, 0.0);
                    EXPECT_GE(rec.turnaround_quanta, 0.0);
                }
                EXPECT_EQ(ids.size(), result.completed_tasks);
                EXPECT_EQ(result.adaptive, info.adaptive) << info.name;
                signatures.push_back(run_signature(result));
            }
            // Determinism: identical trace + fresh policy => identical run.
            EXPECT_EQ(signatures[0], signatures[1])
                << info.name << " width " << width << " is nondeterministic";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredPolicies, RegistryPolicyTest,
                         ::testing::ValuesIn(sched::registered_policies().begin(),
                                             sched::registered_policies().end()),
                         [](const ::testing::TestParamInfo<sched::PolicyInfo>& info) {
                             std::string name(info.param.name);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

}  // namespace
