// Tests for the dynamic-scenario engine: trace sampling (arrival processes,
// load profiles, fingerprints), the open-system runner (admission/queueing,
// retirement, partial allocations), the closed-mode bit-identity with the
// classic ThreadManager, the acceptance load sweep, and the scenario grid's
// thread-count determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/synpa_policy.hpp"
#include "exp/scenario_grid.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/baselines.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

uarch::SimConfig chip4x2_config() {
    uarch::SimConfig cfg;
    cfg.cores = 4;  // the paper's 4-core / 2-way evaluation shape
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

scenario::ScenarioSpec poisson_spec(double rate, std::uint64_t seed = 11) {
    scenario::ScenarioSpec spec;
    spec.name = "poisson";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r"};
    spec.arrival_rate = rate;
    spec.service_quanta = 6;
    spec.horizon_quanta = 40;
    spec.seed = seed;
    return spec;
}

// ---------- trace sampling ----------

TEST(ScenarioTrace, DeterministicAndSeedSensitive) {
    const uarch::SimConfig cfg = chip4x2_config();
    const scenario::ScenarioTrace a = scenario::build_trace(poisson_spec(0.5, 1), cfg);
    const scenario::ScenarioTrace b = scenario::build_trace(poisson_spec(0.5, 1), cfg);
    const scenario::ScenarioTrace c = scenario::build_trace(poisson_spec(0.5, 2), cfg);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        EXPECT_EQ(a.tasks[i].arrival_quantum, b.tasks[i].arrival_quantum);
        EXPECT_EQ(a.tasks[i].app_name, b.tasks[i].app_name);
        EXPECT_EQ(a.tasks[i].seed, b.tasks[i].seed);
        EXPECT_EQ(a.tasks[i].service_insts, b.tasks[i].service_insts);
    }
    // A different arrival seed samples a different trace.
    bool differs = a.tasks.size() != c.tasks.size();
    for (std::size_t i = 0; !differs && i < a.tasks.size(); ++i)
        differs = a.tasks[i].arrival_quantum != c.tasks[i].arrival_quantum ||
                  a.tasks[i].app_name != c.tasks[i].app_name;
    EXPECT_TRUE(differs);
}

TEST(ScenarioTrace, TasksAreArrivalSortedWithServiceDemands) {
    const scenario::ScenarioTrace trace =
        scenario::build_trace(poisson_spec(0.8), chip4x2_config());
    ASSERT_FALSE(trace.tasks.empty());
    for (std::size_t i = 1; i < trace.tasks.size(); ++i)
        EXPECT_LE(trace.tasks[i - 1].arrival_quantum, trace.tasks[i].arrival_quantum);
    std::set<std::uint64_t> seeds;
    for (const scenario::PlannedTask& t : trace.tasks) {
        EXPECT_GT(t.service_insts, 0u);
        EXPECT_GT(t.isolated_ipc, 0.0);
        seeds.insert(t.seed);  // every instance gets its own behaviour seed
    }
    EXPECT_EQ(seeds.size(), trace.tasks.size());
}

TEST(ScenarioTrace, LoadProfileScalesArrivals) {
    scenario::ScenarioSpec spec = poisson_spec(0.5);
    spec.horizon_quanta = 120;
    spec.load_profile = {{0, 1.0}, {60, 4.0}};
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, chip4x2_config());
    std::size_t low = 0, high = 0;
    for (const scenario::PlannedTask& t : trace.tasks)
        (t.arrival_quantum < 60 ? low : high) += 1;
    EXPECT_GT(high, 2 * low);  // the surge window is 4x the base rate
}

TEST(ScenarioTrace, BurstProcessArrivesInWaves) {
    scenario::ScenarioSpec spec;
    spec.name = "burst";
    spec.process = scenario::ArrivalProcess::kBurst;
    spec.app_mix = {"mcf", "leela_r"};
    spec.burst_period = 10;
    spec.burst_size = 3;
    spec.horizon_quanta = 30;
    spec.service_quanta = 4;
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, chip4x2_config());
    ASSERT_EQ(trace.tasks.size(), 9u);  // bursts at 0, 10, 20
    for (const scenario::PlannedTask& t : trace.tasks)
        EXPECT_EQ(t.arrival_quantum % 10, 0u);
}

TEST(ScenarioTrace, FingerprintSeparatesSeedAndShape) {
    const scenario::ScenarioSpec base = poisson_spec(0.5, 1);
    scenario::ScenarioSpec reseeded = base;
    reseeded.seed = 2;
    scenario::ScenarioSpec reshaped = base;
    reshaped.load_profile = {{10, 2.0}};
    EXPECT_EQ(scenario::scenario_fingerprint(base), scenario::scenario_fingerprint(base));
    EXPECT_NE(scenario::scenario_fingerprint(base), scenario::scenario_fingerprint(reseeded));
    EXPECT_NE(scenario::scenario_fingerprint(base), scenario::scenario_fingerprint(reshaped));
}

// ---------- closed mode: bit-identical with the classic manager ----------

std::vector<sched::TaskSpec> classic_workload() {
    return {
        {.app_name = "nab_r", .seed = 1, .target_insts = 30'000, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = 30'000, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = 30'000, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = 30'000, .isolated_ipc = 1.7},
        {.app_name = "leela_r", .seed = 5, .target_insts = 30'000, .isolated_ipc = 1.1},
        {.app_name = "hmmer", .seed = 6, .target_insts = 30'000, .isolated_ipc = 1.9},
        {.app_name = "lbm_r", .seed = 7, .target_insts = 30'000, .isolated_ipc = 0.8},
        {.app_name = "astar", .seed = 8, .target_insts = 30'000, .isolated_ipc = 1.2},
    };
}

template <class MakePolicy>
void expect_closed_matches_classic(const uarch::SimConfig& cfg, MakePolicy make_policy) {
    const std::vector<sched::TaskSpec> specs = classic_workload();

    uarch::Platform classic_platform(cfg);
    auto classic_policy = make_policy();
    sched::ThreadManager manager(classic_platform, *classic_policy, specs);
    const sched::RunResult classic = manager.run();

    uarch::Platform scenario_platform(cfg);
    auto scenario_policy = make_policy();
    const scenario::ScenarioTrace trace = scenario::closed_trace("classic", specs);
    scenario::ScenarioRunner runner(scenario_platform, *scenario_policy, trace);
    const scenario::ScenarioResult result = runner.run();

    // Bit-identical reproduction of the classic methodology results.
    ASSERT_TRUE(classic.completed);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.turnaround_quanta, classic.turnaround_quanta);
    EXPECT_EQ(result.quanta_executed, classic.quanta_executed);
    EXPECT_EQ(result.migrations, classic.migrations);
    ASSERT_EQ(result.tasks.size(), classic.outcomes.size());
    for (const sched::TaskOutcome& out : classic.outcomes) {
        const scenario::TaskRecord& rec =
            result.tasks[static_cast<std::size_t>(out.slot_index)];
        EXPECT_EQ(rec.finish_quantum, out.finish_quantum);  // exact doubles
        EXPECT_EQ(rec.turnaround_quanta, out.finish_quantum);
        EXPECT_TRUE(rec.completed);
    }
}

TEST(ScenarioRunner, ClosedModeMatchesThreadManagerUnderLinux) {
    expect_closed_matches_classic(chip4x2_config(),
                                  [] { return std::make_unique<sched::LinuxPolicy>(); });
}

TEST(ScenarioRunner, ClosedModeMatchesThreadManagerUnderSynpa) {
    expect_closed_matches_classic(chip4x2_config(), [] {
        return std::make_unique<core::SynpaPolicy>(model::InterferenceModel::paper_table4());
    });
}

uarch::SimConfig chip2x4_config() {
    uarch::SimConfig cfg;
    cfg.cores = 2;     // same 8 hardware threads as the paper's shape...
    cfg.smt_ways = 4;  // ...but packed four to a core (TX2 SMT-4 BIOS mode)
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

TEST(ScenarioRunner, ClosedModeMatchesThreadManagerAtSmt4) {
    // The closed-mode delegation contract holds at every width: the same
    // 8-task workload on a 2-core SMT-4 chip reproduces a direct
    // ThreadManager run bit-identically under both drivers.
    expect_closed_matches_classic(chip2x4_config(),
                                  [] { return std::make_unique<sched::LinuxPolicy>(); });
    expect_closed_matches_classic(chip2x4_config(), [] {
        return std::make_unique<core::SynpaPolicy>(model::InterferenceModel::paper_table4());
    });
}

// ---------- open system ----------

/// Explicit-trace scenario with `n` tasks all arriving at quantum 0.
scenario::ScenarioTrace flat_trace(int n, const uarch::SimConfig& cfg) {
    scenario::ScenarioSpec spec;
    spec.name = "flat-" + std::to_string(n);
    spec.process = scenario::ArrivalProcess::kTrace;
    const std::vector<std::string> apps = {"mcf", "leela_r", "gobmk", "nab_r", "bwaves"};
    for (int i = 0; i < n; ++i)
        spec.trace.push_back({0, apps[static_cast<std::size_t>(i) % apps.size()]});
    spec.service_quanta = 5;
    spec.horizon_quanta = 10;
    spec.seed = 5;
    return scenario::build_trace(spec, cfg);
}

TEST(ScenarioRunner, PartialLoadRunsSinglesAndCompletes) {
    const uarch::SimConfig cfg = chip4x2_config();
    for (const int n : {1, 3, 5, 7}) {  // odd and under-subscribed counts
        uarch::Platform platform(cfg);
        core::SynpaPolicy policy{model::InterferenceModel::paper_table4()};
        const scenario::ScenarioTrace trace = flat_trace(n, cfg);
        scenario::ScenarioRunner runner(platform, policy, trace);
        const scenario::ScenarioResult result = runner.run();
        EXPECT_TRUE(result.completed) << n << " tasks";
        EXPECT_EQ(result.completed_tasks, static_cast<std::size_t>(n));
        ASSERT_FALSE(result.timeline.empty());
        for (const scenario::QuantumSample& s : result.timeline) {
            EXPECT_LE(s.live, n);
            EXPECT_LE(s.utilization, static_cast<double>(n) / 8.0 + 1e-9);
        }
        EXPECT_EQ(platform.bound_tasks().size(), 0u);  // everything retired
    }
}

TEST(ScenarioRunner, OverloadQueuesFifoAndDrains) {
    const uarch::SimConfig cfg = chip4x2_config();
    uarch::Platform platform(cfg);
    sched::LinuxPolicy policy;
    const scenario::ScenarioTrace trace = flat_trace(11, cfg);  // 8 slots + 3 queued
    scenario::ScenarioRunner runner(platform, policy, trace);
    const scenario::ScenarioResult result = runner.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.completed_tasks, 11u);
    ASSERT_FALSE(result.timeline.empty());
    EXPECT_EQ(result.timeline.front().live, 8);    // chip full...
    EXPECT_EQ(result.timeline.front().queued, 3);  // ...the rest waiting
    // FIFO admission: the queued tasks (plan order 8..10) start later.
    for (std::size_t i = 8; i < 11; ++i) {
        EXPECT_GT(result.tasks[i].admit_quantum, 0u);
        EXPECT_GT(result.tasks[i].queue_quanta, 0.0);
    }
}

TEST(ScenarioRunner, SamplingPolicySurvivesLiveSetGrowth) {
    // Regression: a pairing sampled while few tasks were live must not be
    // replayed after arrivals grow the set (it used to overflow the core
    // count).  Start with 2 tasks, then a burst of 6 more.
    const uarch::SimConfig cfg = chip4x2_config();
    scenario::ScenarioSpec spec;
    spec.name = "growth";
    spec.process = scenario::ArrivalProcess::kBurst;
    spec.app_mix = {"mcf", "leela_r", "gobmk"};
    spec.initial_tasks = 2;
    spec.burst_period = 12;
    spec.burst_size = 6;
    spec.horizon_quanta = 13;  // one burst after the quiet start
    spec.service_quanta = 6;
    spec.seed = 21;
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, cfg);

    uarch::Platform platform(cfg);
    sched::SamplingPolicy policy(5, {.explore_quanta = 3, .exploit_quanta = 6});
    scenario::ScenarioRunner runner(platform, policy, trace);
    const scenario::ScenarioResult result = runner.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.completed_tasks, trace.tasks.size());
}

TEST(ScenarioRunner, OpenSystemIsDeterministic) {
    const uarch::SimConfig cfg = chip4x2_config();
    const auto run_once = [&cfg] {
        uarch::Platform platform(cfg);
        core::SynpaPolicy policy{model::InterferenceModel::paper_table4()};
        const scenario::ScenarioTrace trace =
            scenario::build_trace(poisson_spec(0.9), cfg);
        return scenario::ScenarioRunner(platform, policy, trace).run();
    };
    const scenario::ScenarioResult a = run_once();
    const scenario::ScenarioResult b = run_once();
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.quanta_executed, b.quanta_executed);
    for (std::size_t i = 0; i < a.tasks.size(); ++i)
        EXPECT_EQ(a.tasks[i].finish_quantum, b.tasks[i].finish_quantum);
}

TEST(ScenarioRunner, Smt4OpenSystemCompletesAndConservesTasks) {
    // Open-system SMT-4: arrivals above the 2-core count force real 3- and
    // 4-way groups; every planned task must finish exactly once, the live
    // count must respect the widened capacity, and nothing may stay bound.
    const uarch::SimConfig cfg = chip2x4_config();
    for (const int n : {3, 6, 9, 11}) {  // partial, saturated, oversubscribed
        uarch::Platform platform(cfg);
        core::SynpaPolicy policy{model::InterferenceModel::paper_table4()};
        const scenario::ScenarioTrace trace = flat_trace(n, cfg);
        scenario::ScenarioRunner runner(platform, policy, trace);
        const scenario::ScenarioResult result = runner.run();
        EXPECT_TRUE(result.completed) << n << " tasks";
        EXPECT_EQ(result.completed_tasks, static_cast<std::size_t>(n));
        std::size_t finished = 0;
        for (const scenario::TaskRecord& rec : result.tasks) finished += rec.completed;
        EXPECT_EQ(finished, static_cast<std::size_t>(n));  // each exactly once
        for (const scenario::QuantumSample& s : result.timeline)
            EXPECT_LE(s.live, 8);  // 2 cores x 4 ways
        EXPECT_EQ(platform.bound_tasks().size(), 0u);
    }
}

// ---------- multi-chip acceptance ----------

TEST(Multichip, FourChipThirtyTwoCoreScenarioCompletesAtScale) {
    // The PR's scale unlock: 4 chips x 32 cores x SMT-4 = 512 hardware
    // contexts, open-system Poisson arrivals, the topology-aware SYNPA
    // policy — with every platform invariant re-validated after every
    // quantum.  Every planned task must finish exactly once, and the
    // benefit-gated balancer must keep cross-chip churn a tiny fraction of
    // total migrations.
    uarch::SimConfig cfg;
    cfg.num_chips = 4;
    cfg.cores = 32;
    cfg.smt_ways = 4;
    cfg.cycles_per_quantum = 1'000;

    scenario::ScenarioSpec spec;
    spec.name = "4x32x4";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r", "bwaves"};
    spec.service_quanta = 4;
    spec.horizon_quanta = 10;
    spec.seed = 3;
    const double capacity = 4.0 * 32.0 * 4.0;
    spec.arrival_rate = 0.5 * capacity / 4.0;
    spec.initial_tasks = 128;
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, cfg);
    ASSERT_GT(trace.tasks.size(), 300u);  // genuinely large

    uarch::Platform platform(cfg);
    EXPECT_EQ(platform.hw_contexts(), 512);
    core::SynpaPolicy policy{model::InterferenceModel::paper_table4()};
    scenario::ScenarioRunner::Options opts;
    opts.max_quanta = 2'000;
    opts.record_timeline = false;
    opts.on_quantum = [](const uarch::Platform& p) { uarch::validate_platform(p); };
    scenario::ScenarioRunner runner(platform, policy, trace, opts);
    const scenario::ScenarioResult result = runner.run();

    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.completed_tasks, trace.tasks.size());
    std::size_t finished = 0;
    for (const scenario::TaskRecord& rec : result.tasks) {
        finished += rec.completed;
        if (rec.completed) {
            EXPECT_GE(rec.chip_id, 0);
            EXPECT_LT(rec.chip_id, 4);
        }
    }
    EXPECT_EQ(finished, trace.tasks.size());  // no task lost or duplicated
    EXPECT_EQ(platform.bound_tasks().size(), 0u);
    EXPECT_GT(result.migrations, 0u);
    // Benefit-gated cross-chip moves: rare relative to total migrations.
    EXPECT_LT(static_cast<double>(result.cross_chip_migrations),
              0.05 * static_cast<double>(result.migrations));
}

// ---------- the acceptance load sweep ----------

TEST(ScenarioRunner, LoadSweepCompletesUnderEveryPolicy) {
    // Arrival rates yielding average runnable threads of 4, 6, 7, 8 and 10
    // on the 4-core/2-way chip (runnable = rate x isolated service time;
    // 10 oversubscribes the 8 hardware threads, exercising the queue).
    const uarch::SimConfig cfg = chip4x2_config();
    const double service = 6.0;  // spec.service_quanta below
    for (const double runnable : {4.0, 6.0, 7.0, 8.0, 10.0}) {
        scenario::ScenarioSpec spec = poisson_spec(runnable / service);
        spec.name = "runnable-" + std::to_string(runnable);
        spec.service_quanta = static_cast<std::uint64_t>(service);
        spec.initial_tasks = static_cast<std::uint64_t>(std::min(runnable, 8.0));
        spec.horizon_quanta = 30;
        const scenario::ScenarioTrace trace = scenario::build_trace(spec, cfg);

        const auto policies = std::vector<std::function<
            std::unique_ptr<sched::AllocationPolicy>()>>{
            [] {
                return std::make_unique<core::SynpaPolicy>(
                    model::InterferenceModel::paper_table4());
            },
            [] { return std::make_unique<sched::RandomPolicy>(3); },
            [] { return std::make_unique<sched::LinuxPolicy>(); },  // no migration
        };
        for (const auto& make_policy : policies) {
            uarch::Platform platform(cfg);
            auto policy = make_policy();
            scenario::ScenarioRunner runner(platform, *policy, trace, {.max_quanta = 10'000});
            const scenario::ScenarioResult result = runner.run();
            EXPECT_TRUE(result.completed)
                << spec.name << " under " << result.policy_name;
            EXPECT_EQ(result.completed_tasks, trace.tasks.size());
        }
    }
}

// ---------- scenario grid ----------

TEST(ScenarioGrid, DeterministicAcrossThreadCounts) {
    exp::ScenarioCampaign campaign;
    campaign.name = "grid-test";
    campaign.configs = {chip4x2_config()};
    campaign.scenarios = {poisson_spec(0.6, 3), poisson_spec(1.2, 4)};
    campaign.scenarios[1].name = "poisson-heavy";
    campaign.policies = {
        exp::policy("linux",
                    [](std::uint64_t) { return std::make_unique<sched::LinuxPolicy>(); }),
        exp::policy("random",
                    [](std::uint64_t s) { return std::make_unique<sched::RandomPolicy>(s); }),
    };
    campaign.reps = 2;

    exp::ArtifactCache cache_serial, cache_parallel;
    exp::ScenarioGridRunner serial({.threads = 1}, &cache_serial);
    exp::ScenarioGridRunner parallel({.threads = 8}, &cache_parallel);
    const exp::ScenarioGridResult a = serial.run(campaign);
    const exp::ScenarioGridResult b = parallel.run(campaign);

    ASSERT_EQ(a.cells.size(), 4u);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].scenario, b.cells[i].scenario);
        EXPECT_EQ(a.cells[i].policy, b.cells[i].policy);
        EXPECT_EQ(a.cells[i].summary.completed_tasks, b.cells[i].summary.completed_tasks);
        EXPECT_EQ(a.cells[i].summary.mean_turnaround, b.cells[i].summary.mean_turnaround);
        EXPECT_EQ(a.cells[i].summary.p95_turnaround, b.cells[i].summary.p95_turnaround);
        EXPECT_EQ(a.cells[i].summary.mean_utilization, b.cells[i].summary.mean_utilization);
    }
    // Each scenario's trace is memoized once and shared by both policy
    // columns; rep > 0 re-samples with a derived seed.
    EXPECT_EQ(cache_serial.stats().scenario_builds, 4u);  // 2 scenarios x 2 reps
}

TEST(ScenarioGrid, AggregatorsStreamInGridOrder) {
    exp::ScenarioCampaign campaign;
    campaign.name = "agg-test";
    campaign.configs = {chip4x2_config()};
    campaign.scenarios = {poisson_spec(0.8, 9)};
    campaign.policies = {
        exp::policy("linux",
                    [](std::uint64_t) { return std::make_unique<sched::LinuxPolicy>(); }),
        exp::policy("random",
                    [](std::uint64_t s) { return std::make_unique<sched::RandomPolicy>(s); }),
    };

    std::ostringstream csv;
    exp::ScenarioCsvAggregator csv_agg(csv);
    exp::UtilizationSeriesAggregator util_agg(8);
    exp::SlowdownAggregator slow_agg;
    exp::TurnaroundTailAggregator tail_agg;
    exp::ArtifactCache cache;
    exp::ScenarioGridRunner runner({.threads = 4}, &cache);
    runner.run(campaign, {&csv_agg, &util_agg, &slow_agg, &tail_agg});

    const std::string text = csv.str();
    std::size_t lines = 0;
    for (char c : text) lines += c == '\n';
    EXPECT_EQ(lines, 3u);  // header + 2 cells
    EXPECT_NE(text.find("poisson,linux"), std::string::npos);
    EXPECT_NE(text.find("poisson,random"), std::string::npos);

    ASSERT_EQ(util_agg.series().size(), 2u);
    EXPECT_EQ(util_agg.series()[0].policy, "linux");
    EXPECT_EQ(util_agg.series()[0].mean_utilization.size(), 8u);
    for (double u : util_agg.series()[0].mean_utilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }

    ASSERT_EQ(slow_agg.stats().size(), 2u);
    for (const auto& [key, stats] : slow_agg.stats()) {
        EXPECT_GT(stats.count(), 0u);
        EXPECT_GE(stats.mean(), 1.0);  // sharing can only slow tasks down
    }

    ASSERT_EQ(tail_agg.rows().size(), 2u);
    for (const auto& row : tail_agg.rows()) {
        EXPECT_GT(row.samples, 0u);
        EXPECT_LE(row.p50, row.p95);
        EXPECT_LE(row.p95, row.p99);
        EXPECT_LE(row.p99, row.max);
    }
}

}  // namespace
