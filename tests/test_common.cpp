// Unit tests for src/common: deterministic RNG streams, statistics,
// table rendering, env config, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace synpa::common;

TEST(Rng, DeterministicForSameKey) {
    Rng a(42, 1), b(42, 1);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentKeysDiverge) {
    Rng a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a() == b();
    EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(7, 0);
    for (int i = 0; i < 10'000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng r(7, 1);
    for (int i = 0; i < 1'000; ++i) {
        const double u = r.uniform(3.0, 5.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowStaysBelow) {
    Rng r(7, 2);
    for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BetweenInclusive) {
    Rng r(7, 3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1'000; ++i) {
        const auto v = r.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, GeometricMeanApproximatelyInverseP) {
    Rng r(7, 4);
    const double p = 0.02;
    double sum = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(p));
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 / p, 0.1 / p);  // within 10%
}

TEST(Rng, GeometricIsAtLeastOne) {
    Rng r(7, 5);
    for (int i = 0; i < 1'000; ++i) EXPECT_GE(r.geometric(0.9), 1u);
}

TEST(Rng, ExponentialMean) {
    Rng r(7, 6);
    double sum = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 5.0);
}

TEST(Rng, ChanceProbability) {
    Rng r(7, 7);
    int hits = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngHash, StringHashStableAndDistinct) {
    EXPECT_EQ(hash_string("mcf"), hash_string("mcf"));
    EXPECT_NE(hash_string("mcf"), hash_string("mcf_r"));
    EXPECT_NE(hash_string(""), hash_string("a"));
}

TEST(RngHash, DeriveKeySaltsMatter) {
    EXPECT_NE(derive_key(1, 2, 3, 4), derive_key(1, 2, 3, 5));
    EXPECT_NE(derive_key(1, 2, 3, 4), derive_key(1, 2, 4, 3));
    EXPECT_NE(derive_key(1, 2), derive_key(2, 1));
}

TEST(RunningStats, MatchesClosedForm) {
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.variance(), 1.25);
    EXPECT_NEAR(s.sample_variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, MergeEqualsCombined) {
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, empty;
    a.add(5.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Stats, GeomeanOfEqualValues) {
    const std::vector<double> xs = {2.0, 2.0, 2.0};
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanKnownValue) {
    const std::vector<double> xs = {1.0, 4.0};
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanEmptyIsZero) { EXPECT_EQ(geomean({}), 0.0); }

TEST(Stats, MseBasics) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> b = {2.0, 4.0};
    EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 4.0) / 2.0);
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Stats, CoefficientOfVariation) {
    const std::vector<double> xs = {10.0, 10.0, 10.0};
    EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
    const std::vector<double> ys = {1.0, 3.0};
    EXPECT_NEAR(coefficient_of_variation(ys), 0.5, 1e-12);
}

TEST(Stats, PercentileInterpolatesOrderStatistics) {
    const std::vector<double> xs = {40.0, 10.0, 20.0, 30.0};  // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);  // between 20 and 30
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 2.0), 40.0);  // p clamped to [0, 1]
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    const std::vector<double> sorted = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.95), percentile(xs, 0.95));
    EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.5}, 0.99), 7.5);
    EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 10.0);  // p clamped from below too
    const std::vector<double> single = {3.0};
    EXPECT_DOUBLE_EQ(percentile(single, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(single, 1.0), 3.0);
}

TEST(Stats, OutlierDiscardReachesCvLimit) {
    std::vector<double> xs = {100, 101, 99, 100, 500};  // one wild sample
    const auto kept = discard_outliers_until_cv(xs, 0.05);
    EXPECT_EQ(kept.size(), 4u);
    for (double x : kept) EXPECT_LT(x, 200.0);
}

TEST(Stats, OutlierDiscardKeepsMinimum) {
    std::vector<double> xs = {1, 100, 10'000};
    const auto kept = discard_outliers_until_cv(xs, 0.001, 2);
    EXPECT_GE(kept.size(), 2u);
}

TEST(Table, RendersAlignedGrid) {
    Table t({"a", "bb"});
    t.row().add("x").add(1.5, 1);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| x"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
    Table t({"h1", "h2"});
    t.row().add("v").add(static_cast<long long>(3));
    EXPECT_EQ(t.to_csv(), "h1,h2\nv,3\n");
}

TEST(Table, PercentFormatting) {
    Table t({"p"});
    t.row().add_pct(0.365, 1);
    EXPECT_NE(t.to_csv().find("36.5%"), std::string::npos);
}

TEST(Table, AsciiBarClamps) {
    EXPECT_EQ(ascii_bar(-1.0, 10), "..........");
    EXPECT_EQ(ascii_bar(2.0, 10), "##########");
    EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
}

TEST(Table, StackedBarWidthsSum) {
    const std::string bar = stacked_bar(0.25, 0.25, 0.5, 20);
    EXPECT_EQ(bar.size(), 20u);
    EXPECT_EQ(std::count(bar.begin(), bar.end(), '#'), 5);
    EXPECT_EQ(std::count(bar.begin(), bar.end(), 'F'), 5);
    EXPECT_EQ(std::count(bar.begin(), bar.end(), 'B'), 10);
}

TEST(Config, EnvIntFallback) {
    ::unsetenv("SYNPA_TEST_UNSET");
    EXPECT_EQ(env_int("SYNPA_TEST_UNSET", 5), 5);
    ::setenv("SYNPA_TEST_EMPTY", "", 1);
    EXPECT_EQ(env_int("SYNPA_TEST_EMPTY", 5), 5);
    ::setenv("SYNPA_TEST_INT", "17", 1);
    EXPECT_EQ(env_int("SYNPA_TEST_INT", 5), 17);
    ::setenv("SYNPA_TEST_NEG", "-3", 1);
    EXPECT_EQ(env_int("SYNPA_TEST_NEG", 5), -3);
    ::setenv("SYNPA_TEST_SPACE", " 8 ", 1);  // trailing whitespace is fine
    EXPECT_EQ(env_int("SYNPA_TEST_SPACE", 5), 8);
}

TEST(Config, EnvIntMalformedThrowsNamingTheKnob) {
    // A typo'd knob must fail loudly, not silently run the default config.
    ::setenv("SYNPA_TEST_BAD", "xyz", 1);
    EXPECT_THROW(env_int("SYNPA_TEST_BAD", 5), std::runtime_error);
    try {
        env_int("SYNPA_TEST_BAD", 5);
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("SYNPA_TEST_BAD"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("xyz"), std::string::npos);
    }
    ::setenv("SYNPA_TEST_TRAILING", "8cores", 1);  // trailing garbage
    EXPECT_THROW(env_int("SYNPA_TEST_TRAILING", 5), std::runtime_error);
    ::setenv("SYNPA_TEST_OVERFLOW", "99999999999999999999999", 1);
    EXPECT_THROW(env_int("SYNPA_TEST_OVERFLOW", 5), std::runtime_error);
    ::unsetenv("SYNPA_TEST_BAD");
    ::unsetenv("SYNPA_TEST_TRAILING");
    ::unsetenv("SYNPA_TEST_OVERFLOW");
}

TEST(Config, EnvDoubleAndString) {
    ::setenv("SYNPA_TEST_DBL", "2.5", 1);
    EXPECT_DOUBLE_EQ(env_double("SYNPA_TEST_DBL", 1.0), 2.5);
    ::setenv("SYNPA_TEST_DBL_EXP", "1e-3", 1);
    EXPECT_DOUBLE_EQ(env_double("SYNPA_TEST_DBL_EXP", 1.0), 1e-3);
    ::setenv("SYNPA_TEST_DBL_BAD", "fast", 1);
    EXPECT_THROW(env_double("SYNPA_TEST_DBL_BAD", 1.0), std::runtime_error);
    ::setenv("SYNPA_TEST_DBL_TRAIL", "0.5x", 1);
    EXPECT_THROW(env_double("SYNPA_TEST_DBL_TRAIL", 1.0), std::runtime_error);
    ::unsetenv("SYNPA_TEST_DBL_BAD");
    ::unsetenv("SYNPA_TEST_DBL_TRAIL");
    ::setenv("SYNPA_TEST_STR", "hello", 1);
    EXPECT_EQ(env_string("SYNPA_TEST_STR", "d"), "hello");
    EXPECT_EQ(env_string("SYNPA_TEST_STR_UNSET", "d"), "d");
}

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRange) {
    std::vector<int> hits(64, 0);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; }, 3);
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
    parallel_for(0, [](std::size_t) { FAIL(); });
    SUCCEED();
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The pool stays usable and the exception is not rethrown twice.
    std::atomic<int> counter{0};
    pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
    std::atomic<int> ran{0};
    EXPECT_THROW(parallel_for(
                     16,
                     [&](std::size_t i) {
                         ran.fetch_add(1);
                         if (i == 3) throw std::invalid_argument("bad index");
                     },
                     2),
                 std::invalid_argument);
    EXPECT_EQ(ran.load(), 16);  // the batch still drains
}

TEST(ThreadPool, SubmitWaitableDeliversResult) {
    ThreadPool pool(2);
    auto doubled = pool.submit_waitable([] { return 21 * 2; });
    EXPECT_EQ(doubled.get(), 42);
}

TEST(ThreadPool, SubmitWaitableDeliversExceptionThroughFuture) {
    ThreadPool pool(2);
    auto failing = pool.submit_waitable([]() -> int { throw std::domain_error("nope"); });
    EXPECT_THROW(failing.get(), std::domain_error);
    pool.wait_idle();  // the future owned the exception; wait_idle stays clean
    SUCCEED();
}

TEST(FlatIdMap, InsertFindErase) {
    FlatIdMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(3), nullptr);
    EXPECT_FALSE(map.erase(3));

    map.insert_or_assign(3, 30);
    map.insert_or_assign(1, 10);
    ASSERT_NE(map.find(3), nullptr);
    EXPECT_EQ(*map.find(3), 30);
    EXPECT_EQ(map.size(), 2u);

    map.insert_or_assign(3, 33);  // overwrite does not grow
    EXPECT_EQ(*map.find(3), 33);
    EXPECT_EQ(map.size(), 2u);

    EXPECT_TRUE(map.erase(3));
    EXPECT_EQ(map.find(3), nullptr);
    EXPECT_FALSE(map.contains(3));
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.contains(1));
}

TEST(FlatIdMap, NegativeAndUnseenIdsAreAbsent) {
    FlatIdMap<int> map;
    map.insert_or_assign(0, 7);
    EXPECT_EQ(map.find(-1), nullptr);
    EXPECT_FALSE(map.contains(-1));
    EXPECT_EQ(map.find(1'000'000), nullptr);
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 7);
}

TEST(FlatIdMap, ForEachAscendingIdOrder) {
    FlatIdMap<int> map;
    map.insert_or_assign(9, 90);
    map.insert_or_assign(2, 20);
    map.insert_or_assign(5, 50);
    map.erase(5);
    std::vector<int> ids;
    map.for_each([&](int id, int value) {
        ids.push_back(id);
        EXPECT_EQ(value, id * 10);
    });
    EXPECT_EQ(ids, (std::vector<int>{2, 9}));
}

}  // namespace
