// Campaign-engine tests: thread-count determinism, artifact memoization
// (the trainer runs exactly once), grid-order aggregator streaming, and the
// methodology wrappers' equivalence with a hand-built campaign.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/aggregators.hpp"
#include "exp/artifact_cache.hpp"
#include "exp/campaign.hpp"
#include "scenario/scenario.hpp"
#include "sched/baselines.hpp"
#include "workloads/methodology.hpp"

namespace {

using namespace synpa;

uarch::SimConfig small_config() {
    uarch::SimConfig cfg;
    cfg.cores = 2;                   // 4-slot workloads
    cfg.cycles_per_quantum = 4'000;  // short quanta keep the grid fast
    return cfg;
}

workloads::MethodologyOptions fast_methodology() {
    workloads::MethodologyOptions opts;
    opts.reps = 2;
    opts.seed = 7;
    opts.target_isolated_quanta = 10;
    opts.max_quanta = 2'000;
    return opts;
}

/// 2 workloads x 2 policies x 2 reps, no training needed.
exp::Campaign small_campaign() {
    exp::Campaign campaign;
    campaign.name = "test-grid";
    campaign.configs = {small_config()};
    campaign.workloads = {
        {"wa", {"mcf", "leela_r", "hmmer", "astar"}},
        {"wb", {"lbm_r", "gobmk", "nab_r", "mcf_r"}},
    };
    campaign.policies = {
        exp::policy("linux",
                    [](std::uint64_t) { return std::make_unique<sched::LinuxPolicy>(); }),
        exp::policy("random",
                    [](std::uint64_t s) { return std::make_unique<sched::RandomPolicy>(s); }),
    };
    campaign.methodology = fast_methodology();
    return campaign;
}

TEST(Campaign, ResultsAreIdenticalForOneAndManyThreads) {
    const exp::Campaign campaign = small_campaign();

    exp::ArtifactCache cache_serial, cache_parallel;
    exp::CampaignRunner serial({.threads = 1}, &cache_serial);
    exp::CampaignRunner parallel({.threads = 8}, &cache_parallel);
    const exp::CampaignResult a = serial.run(campaign);
    const exp::CampaignResult b = parallel.run(campaign);

    ASSERT_EQ(a.cells.size(), 4u);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const exp::CellResult& ca = a.cells[i];
        const exp::CellResult& cb = b.cells[i];
        EXPECT_EQ(ca.workload, cb.workload);
        EXPECT_EQ(ca.policy, cb.policy);
        ASSERT_EQ(ca.result.turnaround_samples.size(), cb.result.turnaround_samples.size());
        for (std::size_t s = 0; s < ca.result.turnaround_samples.size(); ++s)
            EXPECT_EQ(ca.result.turnaround_samples[s], cb.result.turnaround_samples[s]);
        EXPECT_EQ(ca.result.mean_metrics.turnaround_quanta,
                  cb.result.mean_metrics.turnaround_quanta);
        EXPECT_EQ(ca.result.mean_metrics.fairness, cb.result.mean_metrics.fairness);
        EXPECT_EQ(ca.result.mean_metrics.ipc_geomean, cb.result.mean_metrics.ipc_geomean);
        EXPECT_EQ(ca.result.mean_metrics.antt, cb.result.mean_metrics.antt);
        EXPECT_EQ(ca.result.exemplar.turnaround_quanta, cb.result.exemplar.turnaround_quanta);
        EXPECT_EQ(ca.result.exemplar.migrations, cb.result.exemplar.migrations);
    }
}

TEST(Campaign, CellsArriveInGridOrder) {
    struct Recorder final : exp::Aggregator {
        std::vector<std::string> seen;
        bool finished = false;
        void on_cell(const exp::CellResult& cell) override {
            seen.push_back(cell.workload + "/" + cell.policy);
        }
        void finish() override { finished = true; }
    };
    Recorder recorder;
    exp::ArtifactCache cache;
    exp::CampaignRunner runner({.threads = 8}, &cache);
    runner.run(small_campaign(), {&recorder});
    const std::vector<std::string> expected = {"wa/linux", "wa/random", "wb/linux",
                                               "wb/random"};
    EXPECT_EQ(recorder.seen, expected);
    EXPECT_TRUE(recorder.finished);
}

TEST(Campaign, PreparedWorkloadsAreMemoizedAcrossPoliciesAndRuns) {
    exp::ArtifactCache cache;
    exp::CampaignRunner runner({.threads = 4}, &cache);
    const exp::Campaign campaign = small_campaign();
    runner.run(campaign);
    // 2 workloads x 2 reps distinct (spec, rep) keys; the two policy columns
    // share them.
    EXPECT_EQ(cache.stats().prepared_builds, 4u);
    runner.run(campaign);
    EXPECT_EQ(cache.stats().prepared_builds, 4u);  // second run: all hits
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(ArtifactCache, TrainerRunsExactlyOnceAcrossRepeatedRequests) {
    const uarch::SimConfig cfg = small_config();
    model::TrainerOptions topts;
    topts.isolated_quanta = 16;
    topts.pair_quanta = 6;
    topts.warmup_quanta = 1;
    topts.seed = 3;
    const std::vector<std::string> apps = {"mcf", "leela_r", "hmmer"};

    exp::ArtifactCache cache;
    const auto first = cache.training(cfg, topts, apps);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.stats().trainer_runs, 1u);

    // Same key again — cached, including via a campaign that needs training.
    const auto second = cache.training(cfg, topts, apps);
    EXPECT_EQ(first.get(), second.get());

    exp::Campaign campaign = small_campaign();
    campaign.needs_training = true;
    campaign.trainer = topts;
    campaign.training_apps = apps;
    campaign.workloads.resize(1);
    campaign.policies = {exp::policy("linux", [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    })};
    campaign.methodology.reps = 1;
    exp::CampaignRunner runner({.threads = 2}, &cache);
    runner.run(campaign);
    runner.run(campaign);
    EXPECT_EQ(cache.stats().trainer_runs, 1u);

    // A different key does retrain.
    topts.seed = 4;
    (void)cache.training(cfg, topts, apps);
    EXPECT_EQ(cache.stats().trainer_runs, 2u);
}

TEST(ArtifactCache, ScenarioArrivalSeedsDoNotAlias) {
    const uarch::SimConfig cfg = small_config();
    scenario::ScenarioSpec spec;
    spec.name = "alias-check";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r"};
    spec.arrival_rate = 0.4;
    spec.service_quanta = 4;
    spec.horizon_quanta = 20;
    spec.seed = 1;
    scenario::ScenarioSpec reseeded = spec;
    reseeded.seed = 2;  // differs ONLY in the arrival seed

    exp::ArtifactCache cache;
    const auto a = cache.scenario_trace(spec, cfg);
    const auto b = cache.scenario_trace(reseeded, cfg);
    EXPECT_EQ(cache.stats().scenario_builds, 2u);  // distinct keys, no aliasing
    EXPECT_NE(a.get(), b.get());

    // Same spec again is a pure cache hit.
    const auto c = cache.scenario_trace(spec, cfg);
    EXPECT_EQ(cache.stats().scenario_builds, 2u);
    EXPECT_EQ(a.get(), c.get());

    // And the traces genuinely differ (different sampled arrivals/seeds).
    bool differs = a->tasks.size() != b->tasks.size();
    for (std::size_t i = 0; !differs && i < a->tasks.size(); ++i)
        differs = a->tasks[i].arrival_quantum != b->tasks[i].arrival_quantum ||
                  a->tasks[i].seed != b->tasks[i].seed;
    EXPECT_TRUE(differs);
}

TEST(Campaign, RunWorkloadWrapperMatchesEngineCell) {
    const exp::Campaign campaign = small_campaign();
    const workloads::WorkloadSpec& spec = campaign.workloads.front();
    const workloads::MethodologyOptions opts = fast_methodology();
    const workloads::PolicyFactory make_linux = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };

    const workloads::RepeatedResult direct =
        workloads::run_workload(spec, small_config(), make_linux, opts);

    exp::ArtifactCache cache;
    exp::CampaignRunner runner({.threads = 1}, &cache);
    const exp::CampaignResult engine = runner.run(campaign);
    const exp::CellResult* cell = engine.find(spec.name, "linux");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(direct.turnaround_samples, cell->result.turnaround_samples);
    EXPECT_EQ(direct.mean_metrics.turnaround_quanta,
              cell->result.mean_metrics.turnaround_quanta);
    EXPECT_EQ(direct.mean_metrics.fairness, cell->result.mean_metrics.fairness);
}

TEST(Campaign, PairedSpeedupAndComparisonAgree) {
    exp::PairedSpeedupAggregator paired("linux");
    exp::ArtifactCache cache;
    exp::CampaignRunner runner({.threads = 4}, &cache);
    const exp::CampaignResult result = runner.run(small_campaign(), {&paired});

    const auto streamed = paired.comparisons("random");
    const auto batch = exp::compare_to_baseline(result, 0, 1);
    ASSERT_EQ(streamed.size(), 2u);
    ASSERT_EQ(batch.size(), 2u);
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].workload, batch[i].workload);
        EXPECT_EQ(streamed[i].tt_speedup, batch[i].tt_speedup);
        EXPECT_EQ(streamed[i].ipc_speedup, batch[i].ipc_speedup);
        EXPECT_EQ(streamed[i].fairness_delta, batch[i].fairness_delta);
    }
    for (const auto& c : batch) {
        EXPECT_GT(c.baseline.turnaround_quanta, 0.0);
        EXPECT_GT(c.treatment.turnaround_quanta, 0.0);
        EXPECT_GT(c.tt_speedup, 0.0);
    }
}

TEST(Campaign, CsvAndJsonExportEveryCell) {
    std::ostringstream csv, json;
    exp::CsvAggregator csv_agg(csv);
    exp::JsonAggregator json_agg(json);
    exp::ArtifactCache cache;
    exp::CampaignRunner runner({.threads = 4}, &cache);
    runner.run(small_campaign(), {&csv_agg, &json_agg});

    const std::string csv_text = csv.str();
    std::size_t lines = 0;
    for (char c : csv_text) lines += c == '\n';
    EXPECT_EQ(lines, 5u);  // header + 4 cells
    EXPECT_NE(csv_text.find("wa,linux"), std::string::npos);
    EXPECT_NE(csv_text.find("wb,random"), std::string::npos);

    const std::string json_text = json.str();
    EXPECT_EQ(json_text.front(), '[');
    std::size_t objects = 0;
    for (std::size_t pos = 0; (pos = json_text.find("\"workload\"", pos)) != std::string::npos;
         ++pos)
        ++objects;
    EXPECT_EQ(objects, 4u);
}

TEST(Campaign, RepFailuresSurfaceAsExceptions) {
    exp::Campaign campaign = small_campaign();
    campaign.workloads = {{"bad", {"mcf", "mcf"}}};  // wrong size for 2 cores
    exp::ArtifactCache cache;
    exp::CampaignRunner runner({.threads = 2}, &cache);
    EXPECT_THROW(runner.run(campaign), std::invalid_argument);
}

}  // namespace
