// Prints the simulated platform configuration (paper Table II) and the
// scale knobs in effect, so every bench run is self-describing.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "uarch/sim_config.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Table II", "Simulated platform configuration");
    const uarch::SimConfig cfg = uarch::SimConfig::from_env();

    common::Table table({"parameter", "value", "paper (ThunderX2 CN9975)"});
    table.row().add("chips").add(static_cast<long long>(cfg.num_chips)).add(
        "dual-socket target boxes (SYNPA_NUM_CHIPS)");
    table.row().add("SMT ways").add(static_cast<long long>(cfg.smt_ways)).add(
        "BIOS-configurable 1/2/4 (SYNPA_SMT_WAYS)");
    table.row().add("dispatch width").add(static_cast<long long>(cfg.dispatch_width)).add("4");
    table.row().add("ROB size").add(static_cast<long long>(cfg.rob_size)).add("128");
    table.row().add("IQ size").add(static_cast<long long>(cfg.iq_size)).add("60");
    table.row()
        .add("load/store buffer")
        .add(std::to_string(cfg.load_buffer) + "/" + std::to_string(cfg.store_buffer))
        .add("64/36");
    table.row().add("L1I / L1D (KB)").add(common::format_double(cfg.l1i_kb, 0) + " / " +
                                          common::format_double(cfg.l1d_kb, 0)).add("32 / 32");
    table.row().add("L2 (KB)").add(cfg.l2_kb, 0).add("256");
    table.row().add("shared LLC (MB)").add(cfg.llc_mb, 0).add("28");
    table.row().add("cores used").add(static_cast<long long>(cfg.cores)).add(
        "4 of 28 (8-app workloads)");
    table.row()
        .add("cycles per quantum")
        .add(static_cast<long long>(cfg.cycles_per_quantum))
        .add("~2.2e8 (100 ms)");
    table.row().add("DRAM latency (cycles)").add(static_cast<long long>(cfg.mem_latency)).add(
        "(machine-specific)");
    table.print(std::cout);
    std::cout << "time scales are configurable via SYNPA_* environment variables; the\n"
                 "structure sizes match the paper's Table II exactly.\n";
    return 0;
}
