// Ablation from §VI-A: the paper first built a ~ten-category model (backend
// split by cause) and found it performed *worse* than the three-category
// one — per-category errors compound when summed into a slowdown.  This
// bench trains both models on the same runs and compares the slowdown
// prediction error per aligned sample.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/extended_model.hpp"
#include "model/trainer.hpp"
#include "workloads/groups.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Ablation (SVI-A)",
                        "Three-category model vs fine-grained multi-category model");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    model::TrainerOptions opts;
    opts.isolated_quanta = 80;
    opts.pair_quanta = 24;
    opts.seed = static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_SEED", 42));
    // A representative cross-group subset keeps the double training pass
    // within the bench time budget.
    const std::vector<std::string> apps = {"mcf",     "lbm_r", "leela_r", "gobmk",
                                           "mcf_r",   "nab_r", "bwaves",  "hmmer",
                                           "omnetpp_r", "povray_r"};

    std::cout << "training the 3-category model...\n";
    const model::TrainingResult coarse = model::Trainer(cfg, opts).train(apps);
    std::cout << "training the " << model::kExtendedCategoryCount
              << "-category model on the same runs...\n";
    const model::ExtendedTrainingResult fine = model::ExtendedTrainer(cfg, opts).train(apps);

    // Per-category fit error.
    common::Table table({"model", "categories", "sum of category MSEs", "samples"});
    double coarse_sum = 0.0, fine_sum = 0.0;
    for (double m : coarse.mse) coarse_sum += m;
    for (double m : fine.mse) fine_sum += m;
    table.row()
        .add("SYNPA (3 categories)")
        .add(static_cast<long long>(model::kCategoryCount))
        .add(coarse_sum, 5)
        .add(static_cast<long long>(coarse.sample_count));
    table.row()
        .add("fine-grained")
        .add(static_cast<long long>(model::kExtendedCategoryCount))
        .add(fine_sum, 5)
        .add(static_cast<long long>(fine.sample_count));
    table.print(std::cout);

    common::Table detail({"fine category", "MSE"});
    for (std::size_t c = 0; c < model::kExtendedCategoryCount; ++c)
        detail.row().add(model::kExtendedCategoryNames[c]).add(fine.mse[c], 6);
    detail.print(std::cout);

    std::cout << "paper finding: \"the sum of the error deviations with more components\n"
                 "exceeds the errors of only considering the backend category as a single\n"
                 "category\" — fewer, better-measured categories win.  Measured here: "
              << (fine_sum > coarse_sum ? "reproduced" : "NOT reproduced") << " ("
              << common::format_double(fine_sum / std::max(coarse_sum, 1e-12), 2)
              << "x the 3-category error).\n";
    return 0;
}
