// Campaign-engine orchestration baseline: cells/second and the
// serial-vs-parallel speedup on a reduced fig5-style grid.  Future PRs that
// touch the engine (scheduling, caching, aggregation) compare against these
// numbers to catch orchestration-overhead regressions.
//
// Knobs: SYNPA_BENCH_WORKLOADS (grid width, default 6), plus the usual
// SYNPA_BENCH_* scales.  Training, characterization, and the process-wide
// isolated target-profile cache are all warmed *before* either timer
// starts, so both modes measure the same thing: cell execution plus
// engine overhead, from an equally warm start.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Campaign throughput",
                        "cells/second and serial-vs-parallel speedup of the engine");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.record_traces = false;

    exp::Campaign campaign = bench::paper_eval_campaign(cfg, opts);
    campaign.name = "campaign-throughput";

    // Reduce the workload axis: expand the paper grid once, keep the first N.
    const std::size_t width =
        static_cast<std::size_t>(common::env_int("SYNPA_BENCH_WORKLOADS", 6));
    {
        exp::ArtifactCache warmup;
        const auto chars =
            warmup.characterizations(cfg, campaign.characterization_quanta, opts.seed);
        auto specs = workloads::paper_workloads(*chars, opts.seed);
        if (specs.size() > width) specs.resize(width);
        campaign.workloads = std::move(specs);
        campaign.use_paper_workloads = false;
    }
    const std::size_t cells = campaign.workloads.size() * campaign.policies.size();
    std::cout << "grid: " << campaign.workloads.size() << " workloads x "
              << campaign.policies.size() << " policies x " << opts.reps << " reps = "
              << cells << " cells\n\n";

    struct Mode {
        const char* label;
        std::size_t threads;
    };
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::vector<Mode> modes = {{"serial", 1}, {"parallel", hw}};

    common::Table table({"mode", "threads", "wall (s)", "cells/s", "reps/s", "speedup"});
    double serial_seconds = 0.0;
    // Warm the process-global target-profile cache (prepare_workload's
    // expensive inner step) once, untimed — otherwise the first timed mode
    // would pay all the isolated profiling and bias the speedup.
    {
        exp::ArtifactCache prewarm;
        for (const auto& spec : campaign.workloads)
            for (int rep = 0; rep < opts.reps; ++rep)
                (void)prewarm.prepared(spec, cfg, opts, rep);
    }

    for (const Mode& mode : modes) {
        const bool is_serial = &mode == &modes.front();
        // A private cache per mode: artifacts are pre-resolved untimed, so
        // both modes execute exactly the same cell work from a warm start.
        exp::ArtifactCache cache;
        cache.training(cfg, campaign.trainer, workloads::training_apps());
        cache.characterizations(cfg, campaign.characterization_quanta, opts.seed);
        exp::CampaignRunner runner({.threads = mode.threads}, &cache);
        const exp::CampaignResult result = runner.run(campaign);
        if (is_serial) serial_seconds = result.wall_seconds;
        table.row()
            .add(mode.label)
            .add(static_cast<long long>(mode.threads))
            .add(result.wall_seconds, 2)
            .add(static_cast<double>(result.cells.size()) / result.wall_seconds, 2)
            .add(static_cast<double>(result.reps_executed) / result.wall_seconds, 2)
            .add(serial_seconds > 0.0 ? serial_seconds / result.wall_seconds : 0.0, 2);
    }
    table.print(std::cout);
    std::cout << "speedup = serial wall / mode wall on " << hw << " hardware threads;\n"
                 "overheads to watch: artifact-cache locking, reorder-buffer emission,\n"
                 "per-rep policy construction.\n";
    return 0;
}
