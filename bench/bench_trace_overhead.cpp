// Pins the flight recorder's overhead contract (src/obs/trace.hpp):
//
//   * tracing OFF (null tracer, or attached-but-disabled) costs one
//     predictable branch per site — wall-clock within run-to-run noise of
//     the uninstrumented baseline;
//   * tracing ON (in-memory ring, all events) costs <= 5% throughput.
//
// Method: the same closed 2-chip workload runs `reps` times per mode and
// the best (minimum) wall time per mode is compared — min-of-reps is the
// standard way to strip scheduler noise from a throughput gate.  Noise is
// measured as the baseline's own rep spread and added to both gates, so a
// jittery container doesn't flake the bench.
//
// SYNPA_BENCH_STRICT (default 1) turns gate misses into a nonzero exit;
// SYNPA_BENCH_REPS scales the repetitions.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "model/interference_model.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

uarch::SimConfig bench_config() {
    uarch::SimConfig cfg;
    cfg.cores = 4;
    cfg.smt_ways = 2;
    cfg.num_chips = 2;
    cfg.sim_threads = 1;  // serial platform: measure instrumentation, not the pool
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

std::vector<sched::TaskSpec> bench_specs(int count) {
    const std::vector<std::string> apps = {"mcf",   "leela_r", "nab_r", "bwaves",
                                           "gobmk", "hmmer",   "lbm_r", "astar"};
    std::vector<sched::TaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({.app_name = apps[static_cast<std::size_t>(i) % apps.size()],
                         .seed = static_cast<std::uint64_t>(i + 1),
                         .target_insts = 60'000,
                         .isolated_ipc = 1.0});
    return specs;
}

/// One full closed run; returns wall seconds.
double run_once(obs::Tracer* tracer) {
    const uarch::SimConfig cfg = bench_config();
    uarch::Platform platform(cfg);
    sched::PolicyConfig pconfig;
    pconfig.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    pconfig.seed = 17;
    const auto policy = sched::make_policy("synpa", pconfig);
    const auto specs = bench_specs(platform.hw_contexts());
    sched::ThreadManager manager(
        platform, *policy, specs,
        {.max_quanta = 2'000, .record_traces = false, .tracer = tracer});
    const auto t0 = std::chrono::steady_clock::now();
    manager.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct ModeResult {
    double best = 0.0;
    double worst = 0.0;
};

template <typename MakeTracer>
ModeResult measure(int reps, MakeTracer make_tracer) {
    ModeResult r;
    for (int i = 0; i < reps; ++i) {
        auto tracer = make_tracer();
        const double t = run_once(tracer.get());
        if (i == 0 || t < r.best) r.best = t;
        if (i == 0 || t > r.worst) r.worst = t;
    }
    return r;
}

}  // namespace

int main() {
    bench::print_header("trace overhead",
                        "flight-recorder cost: off within noise, on <= 5%");
    const int reps = static_cast<int>(
        std::max<std::int64_t>(3, common::env_int("SYNPA_BENCH_REPS", 5)));
    const bool strict = common::env_int("SYNPA_BENCH_STRICT", 1) != 0;

    // Warm-up: first run pays one-time costs (page faults, app table init).
    run_once(nullptr);

    const ModeResult baseline =
        measure(reps, [] { return std::unique_ptr<obs::Tracer>(); });
    const ModeResult attached_off = measure(reps, [] {
        obs::TraceConfig cfg;  // enabled = false
        return std::make_unique<obs::Tracer>(cfg);
    });
    const ModeResult enabled = measure(reps, [] {
        obs::TraceConfig cfg;
        cfg.enabled = true;  // in-memory: export cost is not the loop's cost
        return std::make_unique<obs::Tracer>(cfg);
    });

    // Run-to-run noise of the measurement itself, from the baseline spread.
    const double noise = baseline.best > 0.0
                             ? (baseline.worst - baseline.best) / baseline.best
                             : 0.0;
    const double off_overhead = attached_off.best / baseline.best - 1.0;
    const double on_overhead = enabled.best / baseline.best - 1.0;
    const double off_gate = noise + 0.02;
    const double on_gate = noise + 0.05;

    common::Table table({"mode", "best (s)", "overhead", "gate", "verdict"});
    const auto row = [&](const std::string& mode, const ModeResult& r, double overhead,
                         double gate, bool gated) {
        table.row()
            .add(mode)
            .add(r.best, 4)
            .add_pct(overhead, 1)
            .add(gated ? "<= " + common::format_double(gate * 100.0, 1) + "%" : "-")
            .add(!gated ? "baseline" : (overhead <= gate ? "PASS" : "FAIL"));
    };
    row("no tracer", baseline, 0.0, 0.0, false);
    row("attached, disabled", attached_off, off_overhead, off_gate, true);
    row("enabled, in-memory", enabled, on_overhead, on_gate, true);
    table.print(std::cout);
    std::cout << "reps " << reps << ", baseline noise "
              << common::format_double(noise * 100.0, 1) << "% (added to both gates)\n";

    const bool ok = off_overhead <= off_gate && on_overhead <= on_gate;
    if (!ok) {
        std::cout << "FAIL: tracing overhead above gate\n";
        return strict ? 1 : 0;
    }
    std::cout << "PASS: tracing-off within noise, tracing-on within 5%\n";
    return 0;
}
