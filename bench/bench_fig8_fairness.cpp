// Reproduces Figure 8: fairness (1 - sigma/mu of the individual speedups)
// of Linux vs SYNPA across the 20 workloads, with group averages.
//
// Runs the shared paper-eval campaign; the per-workload table comes from
// the paired-speedup aggregator and the group table from a streaming
// group-mean aggregator over the fairness metric.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 8", "Fairness comparison of Linux and SYNPA");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();

    exp::Campaign campaign = bench::paper_eval_campaign(cfg, opts);
    campaign.name = "fig8-fairness";

    std::cout << "campaign: 20 workloads x 2 policies x " << opts.reps
              << " reps (training memoized)...\n\n";
    exp::PairedSpeedupAggregator paired("linux");
    exp::GroupMeanAggregator group_fairness(
        [](const exp::CellResult& cell) { return cell.result.mean_metrics.fairness; });
    bench::EnvExports exports;
    exp::CampaignRunner runner({.threads = opts.threads});
    runner.run(campaign, exports.with({&paired, &group_fairness}));

    common::Table table({"workload", "fairness linux", "fairness synpa", "delta"});
    for (const auto& r : paired.comparisons("synpa")) {
        table.row()
            .add(r.workload)
            .add(r.baseline.fairness, 3)
            .add(r.treatment.fairness, 3)
            .add(r.fairness_delta, 3);
    }
    table.print(std::cout);

    common::Table avg({"group", "linux", "synpa"});
    common::RunningStats all_linux, all_synpa;
    for (const auto& group : group_fairness.group_order()) {
        const auto& linux_stats = group_fairness.groups().at({"linux", group});
        const auto& synpa_stats = group_fairness.groups().at({"synpa", group});
        avg.row().add(group).add(linux_stats.mean(), 3).add(synpa_stats.mean(), 3);
        all_linux.merge(linux_stats);
        all_synpa.merge(synpa_stats);
    }
    avg.row().add("avg").add(all_linux.mean(), 3).add(all_synpa.mean(), 3);
    avg.print(std::cout);
    std::cout << "paper reference: SYNPA is never less fair; the gap is largest on the\n"
                 "mixed workloads and smallest on the frontend-intensive ones.\n";
    return 0;
}
