// Reproduces Figure 8: fairness (1 - sigma/mu of the individual speedups)
// of Linux vs SYNPA across the 20 workloads, with group averages.
#include <iostream>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 8", "Fairness comparison of Linux and SYNPA");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();

    model::TrainerOptions topts;
    topts.seed = opts.seed;
    std::cout << "training the interference model...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());
    const auto chars = workloads::characterize_suite(cfg, bench::characterization_quanta(),
                                                     opts.seed);
    const auto specs = workloads::paper_workloads(chars, opts.seed);

    const workloads::PolicyFactory make_linux = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };
    const workloads::PolicyFactory make_synpa = [&](std::uint64_t) {
        return std::make_unique<core::SynpaPolicy>(trained.model);
    };
    std::cout << "running " << specs.size() << " workloads x 2 policies x " << opts.reps
              << " reps...\n\n";
    const auto rows = workloads::compare_policies(specs, cfg, make_linux, make_synpa, opts);

    common::Table table({"workload", "fairness linux", "fairness synpa", "delta"});
    std::map<std::string, std::vector<double>> by_group_linux, by_group_synpa;
    for (const auto& r : rows) {
        const std::string group = r.workload.substr(0, 2);
        by_group_linux[group].push_back(r.baseline.fairness);
        by_group_synpa[group].push_back(r.treatment.fairness);
        table.row()
            .add(r.workload)
            .add(r.baseline.fairness, 3)
            .add(r.treatment.fairness, 3)
            .add(r.fairness_delta, 3);
    }
    table.print(std::cout);

    common::Table avg({"group", "linux", "synpa"});
    std::vector<double> all_linux, all_synpa;
    for (const auto& [group, values] : by_group_linux) {
        avg.row().add(group).add(common::mean(values), 3).add(
            common::mean(by_group_synpa[group]), 3);
        all_linux.insert(all_linux.end(), values.begin(), values.end());
        const auto& s = by_group_synpa[group];
        all_synpa.insert(all_synpa.end(), s.begin(), s.end());
    }
    avg.row().add("avg").add(common::mean(all_linux), 3).add(common::mean(all_synpa), 3);
    avg.print(std::cout);
    std::cout << "paper reference: SYNPA is never less fair; the gap is largest on the\n"
                 "mixed workloads and smallest on the frontend-intensive ones.\n";
    return 0;
}
