// Reproduces Figure 4: the execution-time distribution of all 28
// applications in isolated execution, as stacked full-dispatch / frontend /
// backend bars.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "workloads/groups.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 4",
                        "Characterization of the applications in isolated execution");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const auto chars =
        workloads::characterize_suite(cfg, bench::characterization_quanta(), 42);

    common::Table table({"application", "IPC", "FD", "FE", "BE",
                         "bar (#=full-dispatch F=frontend B=backend)", "group"});
    for (const auto& c : chars) {
        table.row()
            .add(c.name)
            .add(c.ipc, 2)
            .add_pct(c.fractions[0])
            .add_pct(c.fractions[1])
            .add_pct(c.fractions[2])
            .add(common::stacked_bar(c.fractions[0], c.fractions[1], c.fractions[2], 40))
            .add(workloads::group_name(c.group));
    }
    table.print(std::cout);
    std::cout << "paper reference: backend-bound apps show >65% BE stalls, frontend-bound\n"
                 ">35% FE stalls; Others span ~20% (hmmer) to ~61% (nab_r) full dispatch.\n";
    return 0;
}
