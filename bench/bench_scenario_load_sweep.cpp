// Open-system load sweep: SYNPA vs. the random and no-migration baselines
// across Poisson arrival rates spanning under-, full- and over-subscription
// of the chip (the regime the SYNPA-family follow-up work identifies as the
// interesting one: the allocator must decide *which* threads run alone).
//
// For each load level L (average runnable threads / hardware threads), the
// arrival rate is L * capacity / isolated-service-quanta, so the nominal
// offered load matches L.  Reported per (load, policy): completed tasks,
// throughput, mean/p95/p99 turnaround, mean slowdown vs. isolated, mean
// utilization, and migrations per quantum.
//
// Knobs: SYNPA_SCENARIO_LOADS (comma list, default "0.5,0.75,0.875,1.0,1.25"),
// SYNPA_SCENARIO_POLICIES (registered policy names, default
// "linux,random,synpa"), SYNPA_SCENARIO_SERVICE_QUANTA,
// SYNPA_SCENARIO_HORIZON, plus the usual SYNPA_BENCH_* scales.
// SYNPA_BENCH_CSV exports the per-cell summary rows.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/scenario_grid.hpp"
#include "scenario/scenario.hpp"

namespace {

std::vector<double> load_levels() {
    const std::string raw =
        synpa::common::env_string("SYNPA_SCENARIO_LOADS", "0.5,0.75,0.875,1.0,1.25");
    std::vector<double> loads;
    std::stringstream ss(raw);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty()) loads.push_back(std::stod(item));
    return loads;
}

}  // namespace

int main() {
    using namespace synpa;
    bench::print_header("Scenario load sweep",
                        "Open-system arrivals: SYNPA vs random vs no-migration");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();
    const auto service_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_SCENARIO_SERVICE_QUANTA", 30));
    const auto horizon =
        static_cast<std::uint64_t>(common::env_int("SYNPA_SCENARIO_HORIZON", 150));
    const double capacity =
        static_cast<double>(cfg.cores) * static_cast<double>(cfg.smt_ways);

    // A mixed app diet: backend-bound, frontend-bound, and Others, so the
    // allocator has real pairing decisions to make at every load level.
    const std::vector<std::string> mix = {"mcf",     "bwaves",  "leela_r",
                                          "gobmk",   "nab_r",   "exchange2_r"};

    exp::ScenarioCampaign campaign;
    campaign.name = "scenario-load-sweep";
    campaign.configs = {cfg};
    for (const double load : load_levels()) {
        scenario::ScenarioSpec spec;
        spec.name = "load-" + common::format_double(load, 3);
        spec.process = scenario::ArrivalProcess::kPoisson;
        spec.app_mix = mix;
        spec.service_quanta = service_quanta;
        spec.horizon_quanta = horizon;
        spec.seed = opts.seed;
        spec.arrival_rate = load * capacity / static_cast<double>(service_quanta);
        spec.initial_tasks = static_cast<std::uint64_t>(
            std::min(load * capacity, capacity));  // start near steady state
        campaign.scenarios.push_back(std::move(spec));
    }
    // The `policy=` axis: registered names, overridable without recompiling
    // (e.g. SYNPA_SCENARIO_POLICIES="linux,synpa,synpa-fair,synpa-adaptive").
    {
        const std::string raw =
            common::env_string("SYNPA_SCENARIO_POLICIES", "linux,random,synpa");
        std::stringstream ss(raw);
        std::string name;
        while (std::getline(ss, name, ','))
            if (!name.empty()) campaign.policy_names.push_back(name);
    }
    campaign.reps = opts.reps;
    campaign.needs_training = true;
    campaign.trainer = bench::default_trainer(opts);

    std::cout << "grid: " << campaign.scenarios.size() << " load levels x "
              << campaign.policy_names.size() << " policies x " << campaign.reps
              << " reps (training memoized)...\n\n";

    std::unique_ptr<std::ofstream> csv_stream;
    std::vector<exp::ScenarioAggregator*> aggregators;
    std::unique_ptr<exp::ScenarioCsvAggregator> csv;
    const std::string csv_path = common::env_string("SYNPA_BENCH_CSV", "");
    if (!csv_path.empty()) {
        csv_stream = std::make_unique<std::ofstream>(csv_path);
        if (csv_stream->is_open()) {
            csv = std::make_unique<exp::ScenarioCsvAggregator>(*csv_stream);
            aggregators.push_back(csv.get());
        } else {
            std::cerr << "warning: cannot open export file '" << csv_path
                      << "' — skipping\n";
        }
    }

    exp::ScenarioGridRunner runner({.threads = opts.threads});
    const exp::ScenarioGridResult result = runner.run(campaign, aggregators);

    common::Table table({"load", "policy", "done", "thruput", "mean TT", "p95 TT",
                         "p99 TT", "slowdown", "util", "migr/q"});
    for (const auto& cell : result.cells) {
        const auto& s = cell.summary;
        table.row()
            .add(cell.scenario)
            .add(cell.policy)
            .add(std::to_string(s.completed_tasks) + "/" + std::to_string(s.planned_tasks))
            .add(s.throughput, 3)
            .add(s.mean_turnaround, 1)
            .add(s.p95_turnaround, 1)
            .add(s.p99_turnaround, 1)
            .add(s.mean_slowdown, 2)
            .add(s.mean_utilization, 2)
            .add(s.migrations_per_quantum, 2);
    }
    table.print(std::cout);
    std::cout << "\nexpected: synpa's informed (partial) pairing beats random churn at\n"
                 "every load; gains over the linux (no-migration) baseline grow with\n"
                 "load until the chip saturates, where queueing dominates.  wall "
              << result.wall_seconds << " s\n";
    return 0;
}
