// Fleet SLO acceptance sweep: N serving nodes under an open Poisson stream
// of latency-critical and batch requests, comparing registered fleet
// policies on tail latency, SLO-violation rate and goodput.
//
// The acceptance gate (exit code) checks, at the default scale of 16
// four-context nodes and 100k+ tasks:
//   1. every run drains the full task population before the quantum cap,
//   2. every (scenario, policy, rep) run is bit-identical across the
//      SYNPA_SIM_THREADS axis (node configs differing only in sim_threads),
//   3. fleet-interference-aware beats fleet-least-loaded on p99 slowdown
//      (skippable for smoke runs via SYNPA_FLEET_REQUIRE_WIN=0).
//
// Knobs: SYNPA_FLEET_NODES (16), SYNPA_FLEET_TASKS (100000),
// SYNPA_FLEET_POLICIES ("fleet-least-loaded,fleet-interference-aware"),
// SYNPA_FLEET_LOAD (0.55), SYNPA_FLEET_LC_FRACTION (0.25),
// SYNPA_FLEET_SERVICE_QUANTA (4), SYNPA_FLEET_CHIPS (2),
// SYNPA_FLEET_CORES (1), SYNPA_FLEET_SMT_WAYS (2),
// SYNPA_FLEET_QUANTUM_CYCLES (2000), SYNPA_FLEET_SIM_THREADS ("1,4"),
// SYNPA_FLEET_THREADS (node-stepping threads per run, 1),
// SYNPA_FLEET_REQUIRE_WIN (1), plus SYNPA_BENCH_SEED / SYNPA_BENCH_REPS /
// SYNPA_BENCH_THREADS / SYNPA_BENCH_CSV from bench_common.hpp.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/fleet_grid.hpp"
#include "fleet/metrics.hpp"
#include "model/interference_model.hpp"
#include "scenario/scenario.hpp"

namespace {

std::vector<std::string> split_list(const std::string& raw) {
    std::vector<std::string> items;
    std::stringstream ss(raw);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty()) items.push_back(item);
    return items;
}

}  // namespace

int main() {
    using namespace synpa;
    bench::print_header("Fleet SLO sweep",
                        "SLO-class serving across N platforms: tail latency by "
                        "fleet policy");

    const auto seed =
        static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_SEED", 42));
    const int nodes = static_cast<int>(common::env_int("SYNPA_FLEET_NODES", 16));
    const auto tasks =
        static_cast<std::uint64_t>(common::env_int("SYNPA_FLEET_TASKS", 100'000));
    // Nominal load is accounted at isolated IPC; SMT sharing roughly halves
    // per-context throughput, so 0.55 keeps the fleet busy without letting
    // queueing delay swamp the placement signal the sweep is measuring.
    const double load = common::env_double("SYNPA_FLEET_LOAD", 0.55);
    const double lc_fraction = common::env_double("SYNPA_FLEET_LC_FRACTION", 0.25);
    const auto service_quanta = static_cast<std::uint64_t>(
        common::env_int("SYNPA_FLEET_SERVICE_QUANTA", 4));
    const bool require_win = common::env_int("SYNPA_FLEET_REQUIRE_WIN", 1) != 0;

    uarch::SimConfig base;
    base.num_chips = static_cast<int>(common::env_int("SYNPA_FLEET_CHIPS", 2));
    base.cores = static_cast<int>(common::env_int("SYNPA_FLEET_CORES", 1));
    base.smt_ways = static_cast<int>(common::env_int("SYNPA_FLEET_SMT_WAYS", 2));
    base.cycles_per_quantum =
        common::env_int("SYNPA_FLEET_QUANTUM_CYCLES", 2'000);

    // One node config per SYNPA_SIM_THREADS level: the campaign doubles as
    // the fleet determinism matrix, every run compared bit-for-bit below.
    exp::FleetCampaign campaign;
    campaign.name = "fleet-slo";
    for (const std::string& raw :
         split_list(common::env_string("SYNPA_FLEET_SIM_THREADS", "1,4"))) {
        uarch::SimConfig cfg = base;
        cfg.sim_threads = std::stoi(raw);
        campaign.node_configs.push_back(cfg);
    }

    // Offered load targets `load` x fleet capacity; the horizon is sized so
    // the arrival process delivers the requested task population.
    const double capacity = static_cast<double>(nodes) *
                            static_cast<double>(base.num_chips) *
                            static_cast<double>(base.cores) *
                            static_cast<double>(base.smt_ways);
    const double rate =
        load * capacity / static_cast<double>(service_quanta);
    scenario::ScenarioSpec spec;
    spec.name = "fleet-poisson";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "bwaves", "leela_r", "gobmk", "nab_r", "exchange2_r"};
    spec.service_quanta = service_quanta;
    spec.arrival_rate = rate;
    spec.horizon_quanta =
        static_cast<std::uint64_t>(static_cast<double>(tasks) / rate) + 1;
    spec.initial_tasks = static_cast<std::uint64_t>(capacity);
    spec.seed = seed;
    spec.lc_fraction = lc_fraction;
    campaign.scenarios.push_back(spec);

    campaign.fleet_policies = split_list(common::env_string(
        "SYNPA_FLEET_POLICIES", "fleet-least-loaded,fleet-interference-aware"));
    campaign.nodes = nodes;
    campaign.reps = static_cast<int>(common::env_int("SYNPA_BENCH_REPS", 1));
    campaign.max_quanta = static_cast<std::uint64_t>(
        common::env_int("SYNPA_FLEET_MAX_QUANTA",
                        static_cast<std::int64_t>(spec.horizon_quanta * 6 + 4'000)));
    campaign.fleet_threads =
        static_cast<std::size_t>(common::env_int("SYNPA_FLEET_THREADS", 1));
    // The paper's published coefficients score interference; no training
    // phase, so the bench is self-contained and fast.
    campaign.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());

    std::cout << "grid: " << campaign.node_configs.size() << " sim-thread levels x "
              << campaign.fleet_policies.size() << " fleet policies x "
              << campaign.reps << " reps; " << nodes << " nodes ("
              << base.num_chips << " chips x " << base.cores << " cores x SMT-"
              << base.smt_ways << "), ~" << tasks << " tasks/run...\n\n";

    std::unique_ptr<std::ofstream> csv_stream;
    std::unique_ptr<exp::FleetCsvAggregator> csv;
    std::vector<exp::FleetAggregator*> aggregators;
    const std::string csv_path = common::env_string("SYNPA_BENCH_CSV", "");
    if (!csv_path.empty()) {
        csv_stream = std::make_unique<std::ofstream>(csv_path);
        if (csv_stream->is_open()) {
            csv = std::make_unique<exp::FleetCsvAggregator>(*csv_stream);
            aggregators.push_back(csv.get());
        } else {
            std::cerr << "warning: cannot open export file '" << csv_path
                      << "' — skipping\n";
        }
    }

    exp::FleetGridRunner runner(
        {.threads = static_cast<std::size_t>(common::env_int("SYNPA_BENCH_THREADS", 0)),
         .log = &std::cout});
    const exp::FleetGridResult result = runner.run(campaign, aggregators);

    common::Table table({"sim_thr", "fleet policy", "done", "p50", "p99", "p999",
                         "viol LC", "viol batch", "goodput", "preempt/kq"});
    for (const auto& cell : result.cells) {
        const fleet::FleetSummary& s = cell.summary;
        table.row()
            .add(std::to_string(
                campaign.node_configs[cell.config_index].sim_threads))
            .add(cell.fleet_policy)
            .add(std::to_string(s.all.completed) + "/" + std::to_string(s.all.planned))
            .add(s.all.p50_slowdown, 2)
            .add(s.all.p99_slowdown, 2)
            .add(s.all.p999_slowdown, 2)
            .add(s.latency_critical.violation_rate, 4)
            .add(s.batch.violation_rate, 4)
            .add(s.goodput, 3)
            .add(s.preemptions_per_kquanta, 2);
    }
    table.print(std::cout);

    // ------------------------------------------------- acceptance gate --
    bool ok = true;
    for (const auto& cell : result.cells)
        for (const fleet::FleetResult& run : cell.runs)
            if (!run.completed) {
                std::cout << "FAIL: " << cell.fleet_policy << " (sim_threads="
                          << campaign.node_configs[cell.config_index].sim_threads
                          << ") hit the quantum cap before draining\n";
                ok = false;
            }

    // Bit-identity across the SYNPA_SIM_THREADS axis, rep by rep.
    const std::size_t per_config =
        campaign.scenarios.size() * campaign.fleet_policies.size();
    for (std::size_t ci = 1; ci < campaign.node_configs.size(); ++ci)
        for (std::size_t k = 0; k < per_config; ++k) {
            const auto& a = result.cells[k];
            const auto& b = result.cells[ci * per_config + k];
            for (std::size_t rep = 0; rep < a.runs.size(); ++rep)
                if (fleet::run_signature(a.runs[rep]) !=
                    fleet::run_signature(b.runs[rep])) {
                    std::cout << "FAIL: " << a.fleet_policy << " rep " << rep
                              << " diverges between sim_threads="
                              << campaign.node_configs[0].sim_threads
                              << " and sim_threads="
                              << campaign.node_configs[ci].sim_threads << "\n";
                    ok = false;
                }
        }
    if (ok && campaign.node_configs.size() > 1)
        std::cout << "\ndeterminism: all runs bit-identical across the "
                     "sim-thread axis\n";

    const auto* ia = result.find(spec.name, "fleet-interference-aware");
    const auto* ll = result.find(spec.name, "fleet-least-loaded");
    if (ia != nullptr && ll != nullptr) {
        const double gain = ll->summary.all.p99_slowdown > 0.0
                                ? 1.0 - ia->summary.all.p99_slowdown /
                                            ll->summary.all.p99_slowdown
                                : 0.0;
        std::cout << "p99 slowdown: interference-aware "
                  << ia->summary.all.p99_slowdown << " vs least-loaded "
                  << ll->summary.all.p99_slowdown << " ("
                  << common::format_double(gain * 100.0, 1) << "% better)\n";
        if (require_win &&
            ia->summary.all.p99_slowdown >= ll->summary.all.p99_slowdown) {
            std::cout << "FAIL: interference-aware placement does not beat "
                         "least-loaded on p99 slowdown\n";
            ok = false;
        }
    }

    std::cout << (ok ? "\nACCEPTANCE PASS" : "\nACCEPTANCE FAIL")
              << "  (wall " << result.wall_seconds << " s)\n";
    return ok ? 0 : 1;
}
