// Micro-benchmark for the simulator substrate itself: simulated core-cycles
// per second for isolated and SMT execution, which bounds how fast the
// evaluation sweeps can run.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "uarch/chip.hpp"

namespace {

using namespace synpa;

void BM_ChipQuantumIsolated(benchmark::State& state) {
    uarch::SimConfig cfg;
    cfg.cores = 1;
    cfg.cycles_per_quantum = static_cast<std::uint64_t>(state.range(0));
    uarch::Chip chip(cfg);
    apps::AppInstance task(1, apps::find_app("mcf"), 1);
    chip.bind(task, {.core = 0, .slot = 0});
    for (auto _ : state) chip.run_quantum();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum));
}

void BM_ChipQuantumSmtPair(benchmark::State& state) {
    uarch::SimConfig cfg;
    cfg.cores = 1;
    cfg.cycles_per_quantum = static_cast<std::uint64_t>(state.range(0));
    uarch::Chip chip(cfg);
    apps::AppInstance a(1, apps::find_app("mcf"), 1);
    apps::AppInstance b(2, apps::find_app("leela_r"), 2);
    chip.bind(a, {.core = 0, .slot = 0});
    chip.bind(b, {.core = 0, .slot = 1});
    for (auto _ : state) chip.run_quantum();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum));
}

void BM_ChipQuantumFullWorkload(benchmark::State& state) {
    uarch::SimConfig cfg;  // 4 cores, 8 tasks: the evaluation shape
    cfg.cycles_per_quantum = static_cast<std::uint64_t>(state.range(0));
    uarch::Chip chip(cfg);
    std::vector<std::unique_ptr<apps::AppInstance>> tasks;
    const auto& suite = apps::spec_suite();
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(std::make_unique<apps::AppInstance>(
            i + 1, suite[static_cast<std::size_t>(i * 3)], static_cast<std::uint64_t>(i)));
        chip.bind(*tasks.back(), {.core = i / 2, .slot = i % 2});
    }
    for (auto _ : state) chip.run_quantum();
    // items = core-cycles simulated
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum) * 4);
}

}  // namespace

BENCHMARK(BM_ChipQuantumIsolated)->Arg(50'000);
BENCHMARK(BM_ChipQuantumSmtPair)->Arg(50'000);
BENCHMARK(BM_ChipQuantumFullWorkload)->Arg(50'000);
