// Micro-benchmark for the simulator substrate itself: simulated core-cycles
// per second for isolated and SMT execution, which bounds how fast the
// evaluation sweeps can run.
//
// The BM_PlatformQuantum* families measure the chip-sharded parallel path:
// the same fully-populated platform at sim_threads 1/2/4, so the ratio of
// items_per_second rows IS the parallel speedup (results are bit-identical
// across thread counts by the engine's determinism contract, so only time
// changes).  items_per_second = simulated core-cycles per wall second.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "uarch/chip.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

void BM_ChipQuantumIsolated(benchmark::State& state) {
    uarch::SimConfig cfg;
    cfg.cores = 1;
    cfg.cycles_per_quantum = static_cast<std::uint64_t>(state.range(0));
    uarch::Chip chip(cfg);
    apps::AppInstance task(1, apps::find_app("mcf"), 1);
    chip.bind(task, {.core = 0, .slot = 0});
    for (auto _ : state) chip.run_quantum();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum));
}

void BM_ChipQuantumSmtPair(benchmark::State& state) {
    uarch::SimConfig cfg;
    cfg.cores = 1;
    cfg.cycles_per_quantum = static_cast<std::uint64_t>(state.range(0));
    uarch::Chip chip(cfg);
    apps::AppInstance a(1, apps::find_app("mcf"), 1);
    apps::AppInstance b(2, apps::find_app("leela_r"), 2);
    chip.bind(a, {.core = 0, .slot = 0});
    chip.bind(b, {.core = 0, .slot = 1});
    for (auto _ : state) chip.run_quantum();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum));
}

void BM_ChipQuantumFullWorkload(benchmark::State& state) {
    uarch::SimConfig cfg;  // 4 cores, 8 tasks: the evaluation shape
    cfg.cycles_per_quantum = static_cast<std::uint64_t>(state.range(0));
    uarch::Chip chip(cfg);
    std::vector<std::unique_ptr<apps::AppInstance>> tasks;
    const auto& suite = apps::spec_suite();
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(std::make_unique<apps::AppInstance>(
            i + 1, suite[static_cast<std::size_t>(i * 3)], static_cast<std::uint64_t>(i)));
        chip.bind(*tasks.back(), {.core = i / 2, .slot = i % 2});
    }
    for (auto _ : state) chip.run_quantum();
    // items = core-cycles simulated
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum) * 4);
}

/// Fully-populated platform: one task per hardware thread, spread across
/// every chip/core/slot.  Returns the tasks so they outlive the bindings.
std::vector<std::unique_ptr<apps::AppInstance>> populate(uarch::Platform& platform) {
    const auto& suite = apps::spec_suite();
    std::vector<std::unique_ptr<apps::AppInstance>> tasks;
    tasks.reserve(static_cast<std::size_t>(platform.hw_contexts()));
    for (int core = 0; core < platform.core_count(); ++core) {
        for (int slot = 0; slot < platform.config().smt_ways; ++slot) {
            const int id = static_cast<int>(tasks.size()) + 1;
            tasks.push_back(std::make_unique<apps::AppInstance>(
                id, suite[static_cast<std::size_t>(id * 3) % suite.size()],
                static_cast<std::uint64_t>(id)));
            platform.bind(*tasks.back(), {.core = core, .slot = slot});
        }
    }
    return tasks;
}

void run_platform_bench(benchmark::State& state, const uarch::SimConfig& cfg) {
    uarch::Platform platform(cfg);
    const auto tasks = populate(platform);
    for (auto _ : state) platform.run_quantum();
    // items = simulated core-cycles across every chip
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.cycles_per_quantum) *
                            platform.core_count());
    state.counters["sim_shards"] = platform.sim_shards();
}

/// chips x sim_threads sweep at the evaluation shape (4 cores, SMT-2 per
/// chip).  Rows with equal chips and different sim_threads divide to the
/// parallel speedup.
void BM_PlatformQuantum(benchmark::State& state) {
    uarch::SimConfig cfg;  // 4 cores, SMT-2 per chip
    cfg.num_chips = static_cast<int>(state.range(0));
    cfg.sim_threads = static_cast<int>(state.range(1));
    cfg.cycles_per_quantum = 50'000;
    run_platform_bench(state, cfg);
}

/// The acceptance shape: 4 chips x 32 cores x SMT-4 = 512 hardware
/// contexts, the largest platform the sweeps drive.
void BM_PlatformQuantum512Contexts(benchmark::State& state) {
    uarch::SimConfig cfg;
    cfg.num_chips = 4;
    cfg.cores = 32;
    cfg.smt_ways = 4;
    cfg.sim_threads = static_cast<int>(state.range(0));
    cfg.cycles_per_quantum = 50'000;
    run_platform_bench(state, cfg);
}

}  // namespace

BENCHMARK(BM_ChipQuantumIsolated)->Arg(50'000);
BENCHMARK(BM_ChipQuantumSmtPair)->Arg(50'000);
BENCHMARK(BM_ChipQuantumFullWorkload)->Arg(50'000);
// ->UseRealTime(): the parallel path spends its time in pool workers, so
// per-process CPU time would hide the wall-clock speedup being measured.
BENCHMARK(BM_PlatformQuantum)
    ->ArgNames({"chips", "threads"})
    ->ArgsProduct({{1, 2, 4}, {1, 2, 4}})
    ->UseRealTime();
BENCHMARK(BM_PlatformQuantum512Contexts)
    ->ArgNames({"threads"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->UseRealTime();
