// Reproduces Figure 7: the dynamic per-quantum characterization of the two
// leela_r instances of fb2 (slots 4 and 5), under Linux and under SYNPA,
// with the co-runner's dominant category per quantum.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 7",
                        "Dynamic characterization of the two leela_r of fb2 "
                        "(Linux vs SYNPA)");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.reps = 1;

    model::TrainerOptions topts;
    topts.seed = opts.seed;
    std::cout << "training the interference model...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());

    const workloads::WorkloadSpec spec = workloads::paper_fb2();
    const auto prepared = workloads::prepare_workload(spec, cfg, opts, 0);
    sched::LinuxPolicy linux_policy;
    core::SynpaPolicy synpa_policy(trained.model);
    const auto run_linux = workloads::run_workload_once(prepared, cfg, linux_policy, opts);
    const auto run_synpa = workloads::run_workload_once(prepared, cfg, synpa_policy, opts);

    for (const int slot : {4, 5}) {
        for (const auto* run : {&run_linux, &run_synpa}) {
            std::cout << "\n--- leela_r(0" << slot << ") with " << run->policy_name
                      << " (finish at "
                      << common::format_double(run->outcomes[static_cast<std::size_t>(slot)]
                                                   .finish_quantum,
                                               0)
                      << " quanta) ---\n";
            const auto& trace = run->traces[static_cast<std::size_t>(slot)];
            common::Table table(
                {"quantum", "FD", "FE", "BE", "bar", "corunner", "corunner behaves"});
            // Downsample the series so the table stays readable.
            const std::size_t stride = std::max<std::size_t>(1, trace.size() / 24);
            for (std::size_t q = 0; q < trace.size(); q += stride) {
                const auto& t = trace[q];
                const char* partner_kind = "-";
                if (t.corunner_slot >= 0) {
                    const auto& partner_trace =
                        run->traces[static_cast<std::size_t>(t.corunner_slot)];
                    if (q < partner_trace.size())
                        partner_kind =
                            partner_trace[q].frontend_dominant ? "frontend" : "backend";
                }
                table.row()
                    .add(static_cast<long long>(t.quantum))
                    .add_pct(t.fractions[0])
                    .add_pct(t.fractions[1])
                    .add_pct(t.fractions[2])
                    .add(common::stacked_bar(t.fractions[0], t.fractions[1], t.fractions[2],
                                             24))
                    .add(t.corunner_slot >= 0
                             ? spec.app_names[static_cast<std::size_t>(t.corunner_slot)] +
                                   "(" + std::to_string(t.corunner_slot) + ")"
                             : "-")
                    .add(partner_kind);
            }
            table.print(std::cout);
        }
    }
    std::cout << "\npaper reference shape: under Linux each leela_r keeps one fixed\n"
                 "partner for its whole run; under SYNPA the partner changes with\n"
                 "leela's phase (backend phases get frontend-ish partners).\n";
    return 0;
}
