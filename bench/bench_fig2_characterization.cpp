// Reproduces Figure 2 / §III-B: the three-step characterization of cycles
// at the dispatch stage, shown numerically for a few representative
// applications (measured vs estimated quantities per step).
#include <iostream>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/categories.hpp"
#include "uarch/chip.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 2", "Characterization of cycles at the dispatch stage");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    common::Table table({"application", "cycles", "Step1 FE (M)", "Step1 BE (M)",
                         "Step1 Dc", "Step2 F-Dc (E)", "Step2 Reveals (E)", "Step3 FE",
                         "Step3 BE (+Reveals)", "Step3 FD"});
    for (const char* name : {"mcf", "leela_r", "nab_r", "perlbench", "hmmer"}) {
        uarch::SimConfig solo = cfg;
        solo.cores = 1;
        uarch::Chip chip(solo);
        apps::AppInstance task(1, apps::find_app(name), 42);
        chip.bind(task, {.core = 0, .slot = 0});
        for (int q = 0; q < 20; ++q) chip.run_quantum();
        const auto b = model::characterize(task.counters(), cfg.dispatch_width);
        table.row()
            .add(name)
            .add(static_cast<long long>(b.cycles))
            .add(b.frontend_stalls_measured, 0)
            .add(b.backend_stalls_measured, 0)
            .add(b.dispatch_cycles, 0)
            .add(b.full_dispatch_cycles, 0)
            .add(b.revealed_stalls, 0)
            .add(b.categories[1], 0)
            .add(b.categories[2], 0)
            .add(b.categories[0], 0);
    }
    table.print(std::cout);
    std::cout << "(M) = measured with a performance counter, (E) = estimated from them.\n"
                 "Invariant: Step3 FD + FE + BE == cycles (the three categories tile the\n"
                 "execution exactly, as in the paper's Figure 2 bars).\n";
    return 0;
}
