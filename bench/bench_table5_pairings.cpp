// Reproduces Table V: for workload fb2 under SYNPA, the percentage of time
// each application is scheduled with each other application, split by
// whether it behaved frontend- or backend-dominant that quantum, plus the
// "diff. group" synergistic-pair rate.
//
// A one-cell campaign (fb2 x synpa x 1 rep) whose exemplar run carries the
// per-quantum traces the table is computed from; the trained model and the
// suite characterization are shared artifacts.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "metrics/metrics.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Table V", "Pair-selection percentages in fb2 under SYNPA");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.reps = 1;

    exp::Campaign campaign;
    campaign.name = "table5-pairings";
    campaign.configs = {cfg};
    campaign.workloads = {workloads::paper_fb2()};
    campaign.policies = {bench::synpa_policy()};
    campaign.methodology = opts;
    campaign.needs_training = true;
    campaign.trainer = bench::default_trainer(opts);
    campaign.needs_characterizations = true;  // static Table III slot groups
    campaign.characterization_quanta = bench::characterization_quanta();

    std::cout << "campaign: fb2 x synpa x 1 rep (training memoized)...\n";
    bench::EnvExports exports;
    exp::CampaignRunner runner({.threads = opts.threads});
    const exp::CampaignResult result = runner.run(campaign, exports.with());
    const workloads::WorkloadSpec& spec = campaign.workloads.front();
    const sched::RunResult& run = result.cells.front().result.exemplar;

    // Static groups of each slot (Table III classification), from the very
    // characterization artifact the campaign resolved.
    const auto& chars = result.artifacts.front().characterizations;
    std::vector<workloads::Group> slot_groups;
    for (const auto& app : spec.app_names)
        for (const auto& c : *chars)
            if (c.name == app) slot_groups.push_back(c.group);

    const metrics::PairBehaviorStats stats = metrics::pair_behavior_stats(run, slot_groups);

    std::vector<std::string> headers = {"app (top:FE% / bottom:BE%)"};
    for (std::size_t y = 0; y < spec.app_names.size(); ++y)
        headers.push_back(spec.app_names[y] + "(" + std::to_string(y) + ")");
    headers.push_back("diff. group");
    common::Table table(headers);
    for (std::size_t x = 0; x < spec.app_names.size(); ++x) {
        table.row().add(spec.app_names[x] + "(" + std::to_string(x) + ") FE");
        for (std::size_t y = 0; y < spec.app_names.size(); ++y)
            table.add(stats.fe_share[x][y], 1);
        table.add(stats.diff_group_pct[x], 1);
        table.row().add(std::string(26, ' ') + "BE");
        for (std::size_t y = 0; y < spec.app_names.size(); ++y)
            table.add(stats.be_share[x][y], 1);
        table.add("");
    }
    table.print(std::cout);
    std::cout << "row = % of the app's quanta spent with each partner, split by the\n"
                 "app's own dominant behaviour that quantum; 'diff. group' = % of quanta\n"
                 "paired cross-group (the synergistic rate; paper reports 70-97%).\n";
    return 0;
}
