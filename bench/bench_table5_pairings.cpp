// Reproduces Table V: for workload fb2 under SYNPA, the percentage of time
// each application is scheduled with each other application, split by
// whether it behaved frontend- or backend-dominant that quantum, plus the
// "diff. group" synergistic-pair rate.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "metrics/metrics.hpp"
#include "model/trainer.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Table V", "Pair-selection percentages in fb2 under SYNPA");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.reps = 1;

    model::TrainerOptions topts;
    topts.seed = opts.seed;
    std::cout << "training the interference model...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());

    const workloads::WorkloadSpec spec = workloads::paper_fb2();
    core::SynpaPolicy policy(trained.model);
    const auto prepared = workloads::prepare_workload(spec, cfg, opts, 0);
    const auto run = workloads::run_workload_once(prepared, cfg, policy, opts);

    // Static groups of each slot (Table III classification).
    const auto chars = workloads::characterize_suite(cfg, bench::characterization_quanta(),
                                                     opts.seed);
    std::vector<workloads::Group> slot_groups;
    for (const auto& app : spec.app_names)
        for (const auto& c : chars)
            if (c.name == app) slot_groups.push_back(c.group);

    const metrics::PairBehaviorStats stats = metrics::pair_behavior_stats(run, slot_groups);

    std::vector<std::string> headers = {"app (top:FE% / bottom:BE%)"};
    for (std::size_t y = 0; y < spec.app_names.size(); ++y)
        headers.push_back(spec.app_names[y] + "(" + std::to_string(y) + ")");
    headers.push_back("diff. group");
    common::Table table(headers);
    for (std::size_t x = 0; x < spec.app_names.size(); ++x) {
        table.row().add(spec.app_names[x] + "(" + std::to_string(x) + ") FE");
        for (std::size_t y = 0; y < spec.app_names.size(); ++y)
            table.add(stats.fe_share[x][y], 1);
        table.add(stats.diff_group_pct[x], 1);
        table.row().add(std::string(26, ' ') + "BE");
        for (std::size_t y = 0; y < spec.app_names.size(); ++y)
            table.add(stats.be_share[x][y], 1);
        table.add("");
    }
    table.print(std::cout);
    std::cout << "row = % of the app's quanta spent with each partner, split by the\n"
                 "app's own dominant behaviour that quantum; 'diff. group' = % of quanta\n"
                 "paired cross-group (the synergistic rate; paper reports 70-97%).\n";
    return 0;
}
