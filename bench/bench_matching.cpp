// Micro-benchmark for the pair-selection step (paper §IV-B Step 3): the
// Blossom algorithm vs the exact subset DP vs greedy, across thread counts.
// The paper's motivation: the number of combinations explodes with cores,
// so the selection must stay cheap.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "matching/matching.hpp"

namespace {

using namespace synpa;

matching::WeightMatrix random_matrix(std::size_t n, std::uint64_t seed) {
    common::Rng rng(seed, 0xbe9c);
    matching::WeightMatrix w(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v) w.set(u, v, rng.uniform(2.0, 4.0));
    return w;
}

void BM_BlossomMinPerfect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const matching::WeightMatrix w = random_matrix(n, 42);
    const matching::BlossomMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.min_weight_perfect(w).total_weight);
}

void BM_SubsetDpMinPerfect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const matching::WeightMatrix w = random_matrix(n, 42);
    const matching::SubsetDpMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.min_weight_perfect(w).total_weight);
}

void BM_BruteForceMinPerfect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const matching::WeightMatrix w = random_matrix(n, 42);
    const matching::BruteForceMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.min_weight_perfect(w).total_weight);
}

}  // namespace

// 8 = the paper's workloads (4 cores), 16/56 = one-socket scale-out,
// 112 = every hardware thread of the CN9975.
BENCHMARK(BM_BlossomMinPerfect)->Arg(8)->Arg(16)->Arg(56)->Arg(112);
BENCHMARK(BM_SubsetDpMinPerfect)->Arg(8)->Arg(16)->Arg(20);
BENCHMARK(BM_BruteForceMinPerfect)->Arg(8)->Arg(10);
