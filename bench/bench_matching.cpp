// Micro-benchmark for the pair-selection step (paper §IV-B Step 3): the
// Blossom algorithm vs the exact subset DP vs greedy, across thread counts.
// The paper's motivation: the number of combinations explodes with cores,
// so the selection must stay cheap.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "matching/matching.hpp"

namespace {

using namespace synpa;

matching::WeightMatrix random_matrix(std::size_t n, std::uint64_t seed) {
    common::Rng rng(seed, 0xbe9c);
    matching::WeightMatrix w(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v) w.set(u, v, rng.uniform(2.0, 4.0));
    return w;
}

void BM_BlossomMinPerfect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const matching::WeightMatrix w = random_matrix(n, 42);
    const matching::BlossomMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.min_weight_perfect(w).total_weight);
}

void BM_SubsetDpMinPerfect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const matching::WeightMatrix w = random_matrix(n, 42);
    const matching::SubsetDpMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.min_weight_perfect(w).total_weight);
}

void BM_BruteForceMinPerfect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const matching::WeightMatrix w = random_matrix(n, 42);
    const matching::BruteForceMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.min_weight_perfect(w).total_weight);
}

// ---------------------------------------- warm vs. cold k-way grouping --
// The incremental-allocator story: after one task arrives, re-solving the
// SMT-4 grouping warm (seeded from the incumbent allocation, dirty-set
// local search) must cost a small fraction of a cold solve.  The oracle is
// a cheap closed-form pairwise sum so the timing isolates solver work; the
// oracle_calls counter is the machine-independent cost measure
// tools/bench_snapshot.py diffs across snapshots.

double synthetic_group_cost(std::span<const int> g) {
    double w = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i)
        for (std::size_t j = i + 1; j < g.size(); ++j) {
            const auto u = static_cast<unsigned>(g[i]);
            const auto v = static_cast<unsigned>(g[j]);
            w += static_cast<double>((u * 31u + v * 17u + u * v) % 97u) / 97.0 + 0.5;
        }
    return w;
}

void BM_GroupingColdResolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t cores = n / 4;
    std::uint64_t calls = 0;
    const matching::GroupCost cost = [&calls](std::span<const int> g) {
        ++calls;
        return synthetic_group_cost(g);
    };
    for (auto _ : state)
        benchmark::DoNotOptimize(
            matching::min_weight_grouping_heuristic(n, cores, 4, cost).total_weight);
    state.counters["oracle_calls"] =
        static_cast<double>(calls) / static_cast<double>(state.iterations());
}

void BM_GroupingWarmArrival(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t cores = n / 4;
    std::uint64_t calls = 0;
    const matching::GroupCost cost = [&calls](std::span<const int> g) {
        ++calls;
        return synthetic_group_cost(g);
    };
    // The steady state before the arrival: tasks 0..n-2 already placed by a
    // full solve.  Task n-1 arriving is the single-event re-solve the
    // benchmark times; the incumbent solve runs outside the timing loop.
    const matching::GroupingResult incumbent =
        matching::min_weight_grouping_heuristic(n - 1, cores, 4, cost);
    calls = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            matching::min_weight_grouping_heuristic(n, cores, 4, cost, incumbent.groups)
                .total_weight);
    state.counters["oracle_calls"] =
        static_cast<double>(calls) / static_cast<double>(state.iterations());
}

}  // namespace

// 8 = the paper's workloads (4 cores), 16/56 = one-socket scale-out,
// 112 = every hardware thread of the CN9975.
BENCHMARK(BM_BlossomMinPerfect)->Arg(8)->Arg(16)->Arg(56)->Arg(112);
BENCHMARK(BM_SubsetDpMinPerfect)->Arg(8)->Arg(16)->Arg(20);
BENCHMARK(BM_BruteForceMinPerfect)->Arg(8)->Arg(10);
// 128 = one fully loaded 32-core SMT-4 chip, 512 = the four-chip platform;
// the ISSUE acceptance compares these two at n=512 (warm >= 5x cheaper).
BENCHMARK(BM_GroupingColdResolve)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupingWarmArrival)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);
