// Reproduces Figure 5: turnaround-time speedup of SYNPA over the Linux
// baseline across the 20 evaluation workloads (be0-be4, fe0-fe4, fb0-fb9),
// with per-group averages.
//
// Paper reference shape: backend-intensive ~ +18%, frontend-intensive
// ~ +8%, mixed ~ +36% (up to +55% on fb2); mixed > backend > frontend.
//
// The whole evaluation is one declarative campaign: the engine trains the
// interference model once (memoized in the ArtifactCache), expands the
// paper's twenty workloads, and runs every (workload, policy, rep) cell in
// parallel; the paired-speedup aggregator receives cells in grid order.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 5",
                        "Speedup of the turnaround time over Linux, 20 workloads");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();

    exp::Campaign campaign = bench::paper_eval_campaign(cfg, opts);
    campaign.name = "fig5-turnaround";

    std::cout << "campaign: 20 workloads x 2 policies x " << opts.reps
              << " reps (training memoized)...\n\n";
    exp::PairedSpeedupAggregator paired("linux");
    bench::EnvExports exports;
    exp::CampaignRunner runner({.threads = opts.threads});
    runner.run(campaign, exports.with({&paired}));
    const auto comparisons = paired.comparisons("synpa");

    const std::map<std::string, double> paper_group_ref = {
        {"be", 1.18}, {"fe", 1.08}, {"fb", 1.36}};

    common::Table table({"workload", "TT linux (quanta)", "TT synpa (quanta)",
                         "TT speedup", "bar"});
    std::map<std::string, std::vector<double>> by_group;
    for (const auto& c : comparisons) {
        const std::string group = c.workload.substr(0, 2);
        by_group[group].push_back(c.tt_speedup);
        table.row()
            .add(c.workload)
            .add(c.baseline.turnaround_quanta, 1)
            .add(c.treatment.turnaround_quanta, 1)
            .add(c.tt_speedup, 3)
            .add(common::ascii_bar((c.tt_speedup - 0.9) / 0.8, 32));
    }
    table.print(std::cout);

    common::Table avg({"group", "mean TT speedup", "paper reference"});
    for (const auto& [group, values] : by_group) {
        const auto it = paper_group_ref.find(group);
        avg.row()
            .add(group + " (" + std::to_string(values.size()) + " workloads)")
            .add(common::mean(values), 3)
            .add(it != paper_group_ref.end() ? common::format_double(it->second, 2) : "-");
    }
    avg.print(std::cout);
    std::cout << "expected ordering (paper): fb > be > fe, all >= 1\n";
    return 0;
}
