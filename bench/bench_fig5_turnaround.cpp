// Reproduces Figure 5: turnaround-time speedup of SYNPA over the Linux
// baseline across the 20 evaluation workloads (be0-be4, fe0-fe4, fb0-fb9),
// with per-group averages.
//
// Paper reference shape: backend-intensive ~ +18%, frontend-intensive
// ~ +8%, mixed ~ +36% (up to +55% on fb2); mixed > backend > frontend.
#include <iostream>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 5",
                        "Speedup of the turnaround time over Linux, 20 workloads");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();

    // Train the model once (paper §IV-C: train once, reuse everywhere).
    model::TrainerOptions topts;
    topts.seed = opts.seed;
    topts.pair_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_TRAIN_PAIR_QUANTA", 36));
    std::cout << "training the interference model on 22 applications...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());

    const auto chars = workloads::characterize_suite(cfg, bench::characterization_quanta(),
                                                     opts.seed);
    const auto specs = workloads::paper_workloads(chars, opts.seed);

    const workloads::PolicyFactory make_linux = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };
    const workloads::PolicyFactory make_synpa = [&](std::uint64_t) {
        return std::make_unique<core::SynpaPolicy>(trained.model);
    };

    std::cout << "running " << specs.size() << " workloads x 2 policies x " << opts.reps
              << " reps...\n\n";
    const auto comparisons =
        workloads::compare_policies(specs, cfg, make_linux, make_synpa, opts);

    const std::map<std::string, double> paper_group_ref = {
        {"be", 1.18}, {"fe", 1.08}, {"fb", 1.36}};

    common::Table table({"workload", "TT linux (quanta)", "TT synpa (quanta)",
                         "TT speedup", "bar"});
    std::map<std::string, std::vector<double>> by_group;
    for (const auto& c : comparisons) {
        const std::string group = c.workload.substr(0, 2);
        by_group[group].push_back(c.tt_speedup);
        table.row()
            .add(c.workload)
            .add(c.baseline.turnaround_quanta, 1)
            .add(c.treatment.turnaround_quanta, 1)
            .add(c.tt_speedup, 3)
            .add(common::ascii_bar((c.tt_speedup - 0.9) / 0.8, 32));
    }
    table.print(std::cout);

    common::Table avg({"group", "mean TT speedup", "paper reference"});
    for (const auto& [group, values] : by_group) {
        const auto it = paper_group_ref.find(group);
        avg.row()
            .add(group + " (" + std::to_string(values.size()) + " workloads)")
            .add(common::mean(values), 3)
            .add(it != paper_group_ref.end() ? common::format_double(it->second, 2) : "-");
    }
    avg.print(std::cout);
    std::cout << "expected ordering (paper): fb > be > fe, all >= 1\n";
    return 0;
}
