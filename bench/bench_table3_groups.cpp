// Reproduces Table III: the grouping of the 28 applications into backend
// bound (backend stalls > 65%), frontend bound (frontend stalls > 35%) and
// Others, from their isolated dispatch-stage characterization.
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "workloads/groups.hpp"

namespace {

// The paper's Table III, for side-by-side comparison.
const std::map<std::string, const char*> kPaperGroups = {
    {"cactuBSSN_r", "backend-bound"}, {"lbm_r", "backend-bound"},
    {"mcf", "backend-bound"},         {"milc", "backend-bound"},
    {"xalancbmk_r", "backend-bound"}, {"wrf_r", "backend-bound"},
    {"astar", "frontend-bound"},      {"gobmk", "frontend-bound"},
    {"leela_r", "frontend-bound"},    {"mcf_r", "frontend-bound"},
    {"perlbench", "frontend-bound"},
};

const char* paper_group(const std::string& app) {
    const auto it = kPaperGroups.find(app);
    return it == kPaperGroups.end() ? "others" : it->second;
}

}  // namespace

int main() {
    using namespace synpa;
    bench::print_header("Table III",
                        "Benchmark grouping by backend/frontend dispatch-stall fraction");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const auto chars =
        workloads::characterize_suite(cfg, bench::characterization_quanta(), 42);

    common::Table table({"application", "full-dispatch", "frontend", "backend", "group",
                         "paper group", "match"});
    int matches = 0;
    for (const auto& c : chars) {
        const char* expect = paper_group(c.name);
        const bool match = expect == std::string(workloads::group_name(c.group));
        matches += match;
        table.row()
            .add(c.name)
            .add_pct(c.fractions[0])
            .add_pct(c.fractions[1])
            .add_pct(c.fractions[2])
            .add(workloads::group_name(c.group))
            .add(expect)
            .add(match ? "yes" : "NO");
    }
    table.print(std::cout);
    std::cout << "group agreement with paper Table III: " << matches << "/" << chars.size()
              << "\n";
    return 0;
}
