// Reproduces Table IV and §VI-A model accuracy: trains the three-category
// regression on the 22 training applications (isolated profiles + all SMT
// pairs, instruction-aligned) and reports the fitted coefficients and MSE,
// next to the paper's ThunderX2-trained values.
//
// Coefficients are substrate-specific (ours come from the simulator, the
// paper's from silicon); the comparison point is the *structure*: beta
// dominates its own category, the backend category leans hardest on the
// co-runner (large gamma), and the full-dispatch category keeps beta
// slightly below 1 with a non-negligible rho.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/trainer.hpp"
#include "workloads/groups.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Table IV",
                        "Model coefficients per category + fit MSE (22 training apps)");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    model::TrainerOptions opts;
    opts.isolated_quanta = static_cast<std::uint64_t>(
        common::env_int("SYNPA_BENCH_TRAIN_ISOLATED_QUANTA", 120));
    opts.pair_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_TRAIN_PAIR_QUANTA", 36));
    opts.seed = static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_SEED", 42));

    const auto training = workloads::training_apps();
    std::cout << "training applications: " << training.size() << " (of 28; "
              << workloads::holdout_apps().size() << " held out)\n";

    const model::Trainer trainer(cfg, opts);
    const model::TrainingResult result = trainer.train(training);

    std::cout << "pair runs: " << result.pair_runs
              << ", aligned samples used: " << result.sample_count << "\n\n";

    const model::InterferenceModel paper = model::InterferenceModel::paper_table4();
    common::Table table({"category", "alpha", "beta", "gamma", "rho", "MSE", "R^2",
                         "paper alpha/beta/gamma/rho", "paper MSE"});
    const std::array<double, 3> paper_mse = {0.0021, 0.0703, 0.1583};
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        const auto cat = static_cast<model::Category>(c);
        const auto& k = result.model.coefficients(cat);
        const auto& pk = paper.coefficients(cat);
        table.row()
            .add(model::kCategoryNames[c])
            .add(k.alpha, 4)
            .add(k.beta, 4)
            .add(k.gamma, 4)
            .add(k.rho, 4)
            .add(result.mse[c], 4)
            .add(result.r_squared[c], 3)
            .add(common::format_double(pk.alpha, 4) + "/" + common::format_double(pk.beta, 4) +
                 "/" + common::format_double(pk.gamma, 4) + "/" +
                 common::format_double(pk.rho, 4))
            .add(paper_mse[c], 4);
    }
    table.print(std::cout);
    std::cout << "(paper MSE column order matches the paper: full-dispatch 0.0021, "
                 "frontend 0.0703, backend 0.1583 — backend is the noisiest there too)\n";
    return 0;
}
