// Shared helpers for the bench binaries: environment-scaled options and the
// header every report prints so runs are self-describing.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "common/config.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/methodology.hpp"

namespace synpa::bench {

/// Evaluation scales, overridable via environment so the same binaries run
/// as a quick smoke pass (CI) or a fuller sweep:
///   SYNPA_BENCH_REPS, SYNPA_BENCH_SEED, SYNPA_BENCH_TARGET_QUANTA,
///   SYNPA_QUANTUM_CYCLES, SYNPA_CORES, ...
inline workloads::MethodologyOptions default_methodology() {
    workloads::MethodologyOptions opts;
    opts.reps = static_cast<int>(common::env_int("SYNPA_BENCH_REPS", 2));
    opts.seed = static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_SEED", 42));
    opts.target_isolated_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_TARGET_QUANTA", 120));
    return opts;
}

inline std::uint64_t characterization_quanta() {
    return static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_CHAR_QUANTA", 60));
}

inline void print_header(const std::string& artifact, const std::string& description) {
    std::cout << "==============================================================\n"
              << "SYNPA reproduction — " << artifact << "\n"
              << description << "\n"
              << "==============================================================\n";
}

}  // namespace synpa::bench
