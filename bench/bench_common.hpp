// Shared helpers for the bench binaries: environment-scaled options, the
// header every report prints, and the declarative campaign the figure
// benches (fig5/fig8/fig9) share.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/synpa_policy.hpp"
#include "exp/aggregators.hpp"
#include "exp/campaign.hpp"
#include "sched/baselines.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/methodology.hpp"

namespace synpa::bench {

/// Evaluation scales, overridable via environment so the same binaries run
/// as a quick smoke pass (CI) or a fuller sweep:
///   SYNPA_BENCH_REPS, SYNPA_BENCH_SEED, SYNPA_BENCH_TARGET_QUANTA,
///   SYNPA_QUANTUM_CYCLES, SYNPA_CORES, ...
inline workloads::MethodologyOptions default_methodology() {
    workloads::MethodologyOptions opts;
    opts.reps = static_cast<int>(common::env_int("SYNPA_BENCH_REPS", 2));
    opts.seed = static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_SEED", 42));
    opts.target_isolated_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_TARGET_QUANTA", 120));
    opts.threads = static_cast<std::size_t>(common::env_int("SYNPA_BENCH_THREADS", 0));
    return opts;
}

inline std::uint64_t characterization_quanta() {
    return static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_CHAR_QUANTA", 60));
}

/// Trainer options every evaluation bench shares, so all figures are
/// reproduced from the *same* trained model (paper §IV-C: train once,
/// reuse everywhere) and any in-process sequence of campaigns hits one
/// ArtifactCache entry.  Note this standardizes on fig5's historical
/// SYNPA_BENCH_TRAIN_PAIR_QUANTA default (36) for every bench.
inline model::TrainerOptions default_trainer(const workloads::MethodologyOptions& opts) {
    model::TrainerOptions topts;
    topts.seed = opts.seed;
    topts.pair_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_BENCH_TRAIN_PAIR_QUANTA", 36));
    return topts;
}

/// The linux and synpa policy columns used throughout the evaluation —
/// registry-built, so every bench resolves them exactly like a `policy=`
/// axis does (sched/registry.hpp).
inline exp::PolicySpec linux_policy() { return exp::registry_policy("linux"); }
inline exp::PolicySpec synpa_policy() { return exp::registry_policy("synpa"); }

/// The evaluation grid behind Figures 5, 8 and 9: the paper's twenty
/// workloads under {linux, synpa}, with the trained model and suite
/// characterization as shared artifacts.
inline exp::Campaign paper_eval_campaign(const uarch::SimConfig& cfg,
                                         const workloads::MethodologyOptions& opts) {
    exp::Campaign campaign;
    campaign.name = "paper-eval";
    campaign.configs = {cfg};
    campaign.use_paper_workloads = true;
    campaign.policies = {linux_policy(), synpa_policy()};
    campaign.methodology = opts;
    // The figure benches only read aggregate metrics; keeping per-quantum
    // traces for the whole 20x2 grid would hold them all in memory.
    campaign.methodology.record_traces = false;
    campaign.needs_training = true;
    campaign.trainer = default_trainer(opts);
    campaign.characterization_quanta = characterization_quanta();
    return campaign;
}

/// Optional export aggregators driven by SYNPA_BENCH_CSV / SYNPA_BENCH_JSON
/// (each names a file path); keeps the streams alive for the campaign's
/// lifetime.
class EnvExports {
public:
    EnvExports() {
        const auto open = [](const std::string& path) -> std::unique_ptr<std::ofstream> {
            auto stream = std::make_unique<std::ofstream>(path);
            if (stream->is_open()) return stream;
            std::cerr << "warning: cannot open export file '" << path << "' — skipping\n";
            return nullptr;
        };
        const std::string csv = common::env_string("SYNPA_BENCH_CSV", "");
        if (!csv.empty() && (csv_stream_ = open(csv)))
            aggregators_.push_back(std::make_unique<exp::CsvAggregator>(*csv_stream_));
        const std::string json = common::env_string("SYNPA_BENCH_JSON", "");
        if (!json.empty() && (json_stream_ = open(json)))
            aggregators_.push_back(std::make_unique<exp::JsonAggregator>(*json_stream_));
    }

    /// The export aggregators plus any bench-specific ones.
    std::vector<exp::Aggregator*> with(std::vector<exp::Aggregator*> extra = {}) {
        for (const auto& agg : aggregators_) extra.push_back(agg.get());
        return extra;
    }

private:
    std::unique_ptr<std::ofstream> csv_stream_, json_stream_;
    std::vector<std::unique_ptr<exp::Aggregator>> aggregators_;
};

inline void print_header(const std::string& artifact, const std::string& description) {
    std::cout << "==============================================================\n"
              << "SYNPA reproduction — " << artifact << "\n"
              << description << "\n"
              << "==============================================================\n";
}

}  // namespace synpa::bench
