// Reproduces Figure 9: IPC speedup (geometric mean of per-application IPCs)
// of SYNPA over Linux across the 20 workloads.
#include <iostream>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 9", "Speedup of IPC (geomean) over Linux");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();

    model::TrainerOptions topts;
    topts.seed = opts.seed;
    std::cout << "training the interference model...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());
    const auto chars = workloads::characterize_suite(cfg, bench::characterization_quanta(),
                                                     opts.seed);
    const auto specs = workloads::paper_workloads(chars, opts.seed);

    const workloads::PolicyFactory make_linux = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };
    const workloads::PolicyFactory make_synpa = [&](std::uint64_t) {
        return std::make_unique<core::SynpaPolicy>(trained.model);
    };
    std::cout << "running " << specs.size() << " workloads x 2 policies x " << opts.reps
              << " reps...\n\n";
    const auto rows = workloads::compare_policies(specs, cfg, make_linux, make_synpa, opts);

    common::Table table(
        {"workload", "IPC linux", "IPC synpa", "IPC speedup", "TT speedup (context)"});
    std::map<std::string, std::vector<double>> by_group;
    for (const auto& r : rows) {
        by_group[r.workload.substr(0, 2)].push_back(r.ipc_speedup);
        table.row()
            .add(r.workload)
            .add(r.baseline.ipc_geomean, 3)
            .add(r.treatment.ipc_geomean, 3)
            .add(r.ipc_speedup, 3)
            .add(r.tt_speedup, 3);
    }
    table.print(std::cout);

    common::Table avg({"group", "mean IPC speedup", "paper reference"});
    const std::map<std::string, const char*> ref = {
        {"be", "~1.01"}, {"fe", "~1.008"}, {"fb", "~1.022"}};
    for (const auto& [group, values] : by_group)
        avg.row().add(group).add(common::mean(values), 3).add(ref.at(group));
    avg.print(std::cout);
    std::cout << "paper reference shape: IPC gains are an order of magnitude smaller\n"
                 "than TT gains — throughput is nearly conserved; SYNPA's win comes from\n"
                 "equalizing progress (fairness) and shortening the critical path.\n";
    return 0;
}
