// Reproduces Figure 9: IPC speedup (geometric mean of per-application IPCs)
// of SYNPA over Linux across the 20 workloads, via the shared paper-eval
// campaign.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 9", "Speedup of IPC (geomean) over Linux");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();

    exp::Campaign campaign = bench::paper_eval_campaign(cfg, opts);
    campaign.name = "fig9-ipc";

    std::cout << "campaign: 20 workloads x 2 policies x " << opts.reps
              << " reps (training memoized)...\n\n";
    exp::PairedSpeedupAggregator paired("linux");
    bench::EnvExports exports;
    exp::CampaignRunner runner({.threads = opts.threads});
    runner.run(campaign, exports.with({&paired}));

    common::Table table(
        {"workload", "IPC linux", "IPC synpa", "IPC speedup", "TT speedup (context)"});
    std::map<std::string, std::vector<double>> by_group;
    for (const auto& r : paired.comparisons("synpa")) {
        by_group[r.workload.substr(0, 2)].push_back(r.ipc_speedup);
        table.row()
            .add(r.workload)
            .add(r.baseline.ipc_geomean, 3)
            .add(r.treatment.ipc_geomean, 3)
            .add(r.ipc_speedup, 3)
            .add(r.tt_speedup, 3);
    }
    table.print(std::cout);

    common::Table avg({"group", "mean IPC speedup", "paper reference"});
    const std::map<std::string, const char*> ref = {
        {"be", "~1.01"}, {"fe", "~1.008"}, {"fb", "~1.022"}};
    for (const auto& [group, values] : by_group)
        avg.row().add(group).add(common::mean(values), 3).add(ref.at(group));
    avg.print(std::cout);
    std::cout << "paper reference shape: IPC gains are an order of magnitude smaller\n"
                 "than TT gains — throughput is nearly conserved; SYNPA's win comes from\n"
                 "equalizing progress (fairness) and shortening the critical path.\n";
    return 0;
}
