// Online-adaptation load sweep: the phase-adaptive SYNPA acceptance bench.
//
// The scenario is deliberately hostile to a frozen model: the app mix is
// the suite's multi-phase applications (they alternate frontend- and
// backend-bound behaviour mid-run every few hundred kinsts), while the
// offline model is trained on a small, poorly matched training set — the
// "trained last quarter, deployed on today's traffic" situation the
// paper's runtime premise warns about.  Both SYNPA columns start from that
// same weak model; the adaptive one additionally runs the online loop
// (CUSUM phase detection -> estimate resets, solo-reference harvesting ->
// incremental refits), so any gap on mean slowdown is attributable to
// adaptation alone.
//
// Expected: synpa-adaptive <= synpa (frozen) on pooled mean slowdown
// across the sweep; the bench prints a PASS/FAIL verdict and (by default)
// returns nonzero on FAIL.
//
// The sweep spans the *contended* regime (default loads 0.7-1.0): below
// ~0.6 most tasks get a core of their own, so there is no grouping
// decision for a better model to improve — only placement churn to risk.
//
// Knobs: SYNPA_ONLINE_LOADS (comma list, default "0.7,0.85,1.0"),
// SYNPA_ONLINE_TRAIN_APPS (comma list, default a weak 3-app set),
// SYNPA_ONLINE_* (detector/refit knobs, see docs/REFERENCE.md),
// SYNPA_SCENARIO_SERVICE_QUANTA / SYNPA_SCENARIO_HORIZON,
// SYNPA_BENCH_STRICT (0 disables the nonzero exit on FAIL; CI smoke uses
// it at reduced scale), plus the usual SYNPA_BENCH_* scales.
// SYNPA_BENCH_CSV exports the per-cell summary rows (note the trailing
// `adaptive` column).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/spec_suite.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/scenario_grid.hpp"
#include "scenario/scenario.hpp"

namespace {

std::vector<std::string> split_list(const std::string& raw) {
    std::vector<std::string> out;
    std::stringstream ss(raw);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty()) out.push_back(item);
    return out;
}

}  // namespace

int main() {
    using namespace synpa;
    bench::print_header("Online adaptation sweep",
                        "Phase-switching open system: adaptive vs frozen-model SYNPA");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();
    const auto service_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_SCENARIO_SERVICE_QUANTA", 30));
    const auto horizon =
        static_cast<std::uint64_t>(common::env_int("SYNPA_SCENARIO_HORIZON", 150));
    const double capacity = static_cast<double>(cfg.num_chips) *
                            static_cast<double>(cfg.cores) *
                            static_cast<double>(cfg.smt_ways);

    // Every multi-phase suite application — tasks that *will* cross phase
    // boundaries mid-run — plus mcf as a stable backend-bound anchor.
    std::vector<std::string> mix;
    for (const apps::AppProfile& app : apps::spec_suite())
        if (app.phase_count() > 1) mix.push_back(app.name);
    mix.push_back("mcf");

    // A weak offline model: three behaviourally narrow training apps that
    // span neither the mix's backend pressure nor its phase alternation.
    const std::vector<std::string> train_apps = split_list(
        common::env_string("SYNPA_ONLINE_TRAIN_APPS", "nab_r,exchange2_r,povray_r"));

    exp::ScenarioCampaign campaign;
    campaign.name = "online-adaptation";
    campaign.configs = {cfg};
    for (const double load :
         [] {
             std::vector<double> loads;
             for (const std::string& s :
                  split_list(common::env_string("SYNPA_ONLINE_LOADS", "0.7,0.85,1.0")))
                 loads.push_back(std::stod(s));
             return loads;
         }()) {
        scenario::ScenarioSpec spec;
        spec.name = "load-" + common::format_double(load, 3);
        spec.process = scenario::ArrivalProcess::kPoisson;
        spec.app_mix = mix;
        spec.service_quanta = service_quanta;
        spec.horizon_quanta = horizon;
        spec.seed = opts.seed;
        spec.arrival_rate = load * capacity / static_cast<double>(service_quanta);
        spec.initial_tasks =
            static_cast<std::uint64_t>(std::min(load * capacity, capacity));
        campaign.scenarios.push_back(std::move(spec));
    }
    campaign.policy_names = {"synpa", "synpa-adaptive"};
    campaign.reps = opts.reps;
    campaign.needs_training = true;
    campaign.trainer = bench::default_trainer(opts);
    campaign.training_apps = train_apps;

    std::cout << "mix: " << mix.size() << " apps (" << (mix.size() - 1)
              << " multi-phase); weak model trained on " << train_apps.size()
              << " apps; grid: " << campaign.scenarios.size() << " loads x "
              << campaign.policy_names.size() << " policies x " << campaign.reps
              << " reps...\n\n";

    std::unique_ptr<std::ofstream> csv_stream;
    std::unique_ptr<exp::ScenarioCsvAggregator> csv;
    std::vector<exp::ScenarioAggregator*> aggregators;
    const std::string csv_path = common::env_string("SYNPA_BENCH_CSV", "");
    if (!csv_path.empty()) {
        csv_stream = std::make_unique<std::ofstream>(csv_path);
        if (csv_stream->is_open()) {
            csv = std::make_unique<exp::ScenarioCsvAggregator>(*csv_stream);
            aggregators.push_back(csv.get());
        } else {
            std::cerr << "warning: cannot open export file '" << csv_path
                      << "' — skipping\n";
        }
    }

    exp::ScenarioGridRunner runner({.threads = opts.threads});
    const exp::ScenarioGridResult result = runner.run(campaign, aggregators);

    common::Table table({"load", "policy", "done", "slowdown", "mean TT", "p95 TT",
                         "util", "migr/q", "alarms/run", "refits/run"});
    double frozen_sum = 0.0, adaptive_sum = 0.0;
    double frozen_weight = 0.0, adaptive_weight = 0.0;
    for (const auto& cell : result.cells) {
        const auto& s = cell.summary;
        const auto w = static_cast<double>(s.completed_tasks);
        if (cell.adaptive) {
            adaptive_sum += s.mean_slowdown * w;
            adaptive_weight += w;
        } else {
            frozen_sum += s.mean_slowdown * w;
            frozen_weight += w;
        }
        table.row()
            .add(cell.scenario)
            .add(cell.policy)
            .add(std::to_string(s.completed_tasks) + "/" + std::to_string(s.planned_tasks))
            .add(s.mean_slowdown, 3)
            .add(s.mean_turnaround, 1)
            .add(s.p95_turnaround, 1)
            .add(s.mean_utilization, 2)
            .add(s.migrations_per_quantum, 2)
            .add(s.phase_changes_per_run, 1)
            .add(s.model_refits_per_run, 1);
    }
    table.print(std::cout);

    const double frozen_mean = frozen_weight > 0 ? frozen_sum / frozen_weight : 0.0;
    const double adaptive_mean =
        adaptive_weight > 0 ? adaptive_sum / adaptive_weight : 0.0;
    const bool pass = adaptive_mean <= frozen_mean;
    std::cout << "\npooled mean slowdown: frozen "
              << common::format_double(frozen_mean, 4) << " vs adaptive "
              << common::format_double(adaptive_mean, 4) << "  ->  "
              << (pass ? "PASS" : "FAIL")
              << " (adaptive must be <= frozen)\nwall " << result.wall_seconds << " s\n";
    const bool strict = common::env_int("SYNPA_BENCH_STRICT", 1) != 0;
    return pass || !strict ? 0 : 1;
}
