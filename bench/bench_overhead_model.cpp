// Micro-benchmark for the paper's overhead claim (contribution 2): SYNPA's
// three-equation model is ~40% cheaper to evaluate than the five-equation
// IBM POWER8-style model of Feliu et al. [4].  The claim is structural —
// 12 multiply-adds per estimate vs 20 (and 4 counters read vs 6) — and the
// madds_per_estimate counter reports it; on a wide out-of-order *host* CPU
// the wall-clock difference largely hides behind superscalar execution, so
// the items_per_second columns of the two models come out similar here.
// On the in-order management path of a real deployment (or at the 112-way
// scale where pair counts explode quadratically) the arithmetic ratio is
// the bound that matters, which is what the paper reports.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "model/interference_model.hpp"

namespace {

using namespace synpa;

/// Five-equation model in the style of [4]/[5]: same per-equation form as
/// Equation 1 but five categories (and six counters on the real machine).
class IbmStyleModel {
public:
    IbmStyleModel() {
        common::Rng rng(7, 0x1bb);
        for (auto& k : coeffs_) {
            k.alpha = rng.uniform(0.0, 0.2);
            k.beta = rng.uniform(0.8, 1.3);
            k.gamma = rng.uniform(0.0, 0.5);
            k.rho = rng.uniform(0.0, 0.3);
        }
    }
    double predict_slowdown(const std::array<double, 5>& a,
                            const std::array<double, 5>& b) const noexcept {
        double s = 0.0;
        for (std::size_t c = 0; c < 5; ++c) s += coeffs_[c].predict(a[c], b[c]);
        return s;
    }

private:
    std::array<model::CategoryCoefficients, 5> coeffs_;
};

template <std::size_t N>
std::vector<std::array<double, N>> random_vectors(std::size_t count) {
    common::Rng rng(11, 0xab);
    std::vector<std::array<double, N>> out(count);
    for (auto& v : out) {
        double sum = 0.0;
        for (double& x : v) {
            x = rng.uniform(0.05, 1.0);
            sum += x;
        }
        for (double& x : v) x /= sum;
    }
    return out;
}

void BM_SynpaThreeEquationAllPairs(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const model::InterferenceModel m = model::InterferenceModel::paper_table4();
    const auto vecs = random_vectors<3>(n);
    for (auto _ : state) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                acc += m.predict_slowdown(vecs[i], vecs[j]);
                acc += m.predict_slowdown(vecs[j], vecs[i]);
            }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * (n - 1)));
    state.counters["madds_per_estimate"] = 12;  // 3 equations x 4 terms
}

void BM_IbmStyleFiveEquationAllPairs(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const IbmStyleModel m;
    const auto vecs = random_vectors<5>(n);
    for (auto _ : state) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                acc += m.predict_slowdown(vecs[i], vecs[j]);
                acc += m.predict_slowdown(vecs[j], vecs[i]);
            }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * (n - 1)));
    state.counters["madds_per_estimate"] = 20;  // 5 equations x 4 terms
}

}  // namespace

// 8 applications is the paper's workload size; larger counts show the
// quadratic blow-up the paper's overhead argument is about.
BENCHMARK(BM_SynpaThreeEquationAllPairs)->Arg(8)->Arg(28)->Arg(112);
BENCHMARK(BM_IbmStyleFiveEquationAllPairs)->Arg(8)->Arg(28)->Arg(112);
