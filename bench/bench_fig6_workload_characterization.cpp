// Reproduces Figure 6: per-application category stacks for the three
// showcased workloads (be1, fe2, fb2), Linux vs SYNPA side by side.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Figure 6",
                        "Per-application characterization under Linux vs SYNPA "
                        "(be1, fe2, fb2)");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.reps = 1;  // the figure shows one representative execution

    model::TrainerOptions topts;
    topts.seed = opts.seed;
    std::cout << "training the interference model...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());

    for (const workloads::WorkloadSpec& spec :
         {workloads::paper_be1(), workloads::paper_fe2(), workloads::paper_fb2()}) {
        std::cout << "\n=== workload " << spec.name << " ===\n";
        sched::LinuxPolicy linux_policy;
        core::SynpaPolicy synpa_policy(trained.model);
        const auto prepared = workloads::prepare_workload(spec, cfg, opts, 0);
        const auto run_linux =
            workloads::run_workload_once(prepared, cfg, linux_policy, opts);
        const auto run_synpa =
            workloads::run_workload_once(prepared, cfg, synpa_policy, opts);

        common::Table table({"slot", "application", "policy", "FD", "FE", "BE",
                             "norm. time", "bar"});
        const double tt_linux = run_linux.turnaround_quanta;
        const double tt_synpa = run_synpa.turnaround_quanta;
        for (std::size_t s = 0; s < spec.app_names.size(); ++s) {
            for (const auto* run : {&run_linux, &run_synpa}) {
                const auto& out = run->outcomes[s];
                const double tt = run == &run_linux ? tt_linux : tt_synpa;
                table.row()
                    .add(std::to_string(s))
                    .add(spec.app_names[s])
                    .add(run->policy_name)
                    .add_pct(out.mean_fractions[0])
                    .add_pct(out.mean_fractions[1])
                    .add_pct(out.mean_fractions[2])
                    .add(out.finish_quantum / tt, 2)
                    .add(common::stacked_bar(out.mean_fractions[0], out.mean_fractions[1],
                                             out.mean_fractions[2], 32));
            }
        }
        table.print(std::cout);
        std::cout << "TT linux = " << common::format_double(tt_linux, 1)
                  << " quanta, TT synpa = " << common::format_double(tt_synpa, 1)
                  << " quanta\n";
    }
    std::cout << "\npaper reference shape: fe2 shows high frontend stalls everywhere\n"
                 "(little headroom); be1 and fb2 show SYNPA trimming backend stalls of\n"
                 "the slowest applications.\n";
    return 0;
}
