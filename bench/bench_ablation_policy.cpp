// Design-choice ablations for the SYNPA policy on the showcased workloads:
//   * pair selector: Blossom (paper) vs exact subset DP vs greedy,
//   * hysteresis: on (default) vs off (re-solve every quantum),
//   * baselines: Linux, Random, Oracle (true phase categories).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Policy ablations",
                        "Selector / hysteresis / baseline sweep on be1, fe2, fb2");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.reps = std::min(opts.reps, 2);

    model::TrainerOptions topts;
    topts.seed = opts.seed;
    std::cout << "training the interference model...\n";
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());
    workloads::calibrate_suite(cfg, 30, opts.seed);

    struct Variant {
        std::string label;
        workloads::PolicyFactory factory;
    };
    auto synpa_with = [&](core::PairSelector sel, bool hysteresis) {
        core::SynpaPolicy::Options o;
        o.selector = sel;
        if (!hysteresis) {
            o.stability_bias = 0.0;
            o.keep_threshold = 0.0;
        }
        return [&trained, o](std::uint64_t) {
            return std::make_unique<core::SynpaPolicy>(trained.model, o);
        };
    };
    const std::vector<Variant> variants = {
        {"linux", [](std::uint64_t) { return std::make_unique<sched::LinuxPolicy>(); }},
        {"random",
         [](std::uint64_t s) { return std::make_unique<sched::RandomPolicy>(s); }},
        {"oracle",
         [&](std::uint64_t) { return std::make_unique<sched::OraclePolicy>(trained.model); }},
        {"synpa (blossom)", synpa_with(core::PairSelector::kBlossom, true)},
        {"synpa (subset-dp)", synpa_with(core::PairSelector::kSubsetDp, true)},
        {"synpa (greedy)", synpa_with(core::PairSelector::kGreedy, true)},
        {"synpa (no hysteresis)", synpa_with(core::PairSelector::kBlossom, false)},
    };

    for (const auto& spec :
         {workloads::paper_be1(), workloads::paper_fe2(), workloads::paper_fb2()}) {
        std::cout << "\n=== workload " << spec.name << " ===\n";
        common::Table table(
            {"policy", "TT (quanta)", "TT speedup vs linux", "fairness", "migr/quantum"});
        double linux_tt = 0.0;
        for (const auto& v : variants) {
            const auto r = workloads::run_workload(spec, cfg, v.factory, opts);
            if (v.label == "linux") linux_tt = r.mean_metrics.turnaround_quanta;
            table.row()
                .add(v.label)
                .add(r.mean_metrics.turnaround_quanta, 1)
                .add(linux_tt > 0.0 ? linux_tt / r.mean_metrics.turnaround_quanta : 0.0, 3)
                .add(r.mean_metrics.fairness, 3)
                .add(static_cast<double>(r.exemplar.migrations) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, r.exemplar.quanta_executed)),
                     2);
        }
        table.print(std::cout);
    }
    std::cout << "\nreading guide: random churn loses badly (pairing matters); informed\n"
                 "selectors agree at n=8 (the optimum is small); hysteresis suppresses\n"
                 "near-tie oscillation that would otherwise pay migration costs.\n";
    return 0;
}
