// Design-choice ablations for the SYNPA policy on the showcased workloads:
//   * pair selector: Blossom (paper) vs exact subset DP vs greedy,
//   * hysteresis: on (default) vs off (re-solve every quantum),
//   * baselines: Linux, Random, Oracle (true phase categories).
//
// One campaign: 3 workloads x 7 policy columns; the trained model and the
// oracle's phase calibration are shared artifacts resolved once.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
    using namespace synpa;
    bench::print_header("Policy ablations",
                        "Selector / hysteresis / baseline sweep on be1, fe2, fb2");

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts = bench::default_methodology();
    opts.reps = std::min(opts.reps, 2);

    const auto synpa_with = [](std::string label, core::PairSelector sel, bool hysteresis) {
        core::SynpaPolicy::Options o;
        o.selector = sel;
        if (!hysteresis) {
            o.stability_bias = 0.0;
            o.keep_threshold = 0.0;
        }
        return exp::PolicySpec{
            std::move(label), [o](const exp::ArtifactSet& artifacts, std::uint64_t) {
                return std::make_unique<core::SynpaPolicy>(artifacts.training->model, o);
            }};
    };

    exp::Campaign campaign;
    campaign.name = "ablation-policy";
    campaign.configs = {cfg};
    campaign.workloads = {workloads::paper_be1(), workloads::paper_fe2(),
                          workloads::paper_fb2()};
    campaign.policies = {
        bench::linux_policy(),
        {"random",
         [](const exp::ArtifactSet&, std::uint64_t s) {
             return std::make_unique<sched::RandomPolicy>(s);
         }},
        {"oracle",
         [](const exp::ArtifactSet& artifacts, std::uint64_t) {
             return std::make_unique<sched::OraclePolicy>(artifacts.training->model);
         }},
        synpa_with("synpa (blossom)", core::PairSelector::kBlossom, true),
        synpa_with("synpa (subset-dp)", core::PairSelector::kSubsetDp, true),
        synpa_with("synpa (greedy)", core::PairSelector::kGreedy, true),
        synpa_with("synpa (no hysteresis)", core::PairSelector::kBlossom, false),
    };
    campaign.methodology = opts;
    campaign.methodology.record_traces = false;  // only scalar run fields are read
    campaign.needs_training = true;
    campaign.trainer = bench::default_trainer(opts);
    campaign.needs_calibration = true;  // the oracle reads true phase categories

    std::cout << "campaign: 3 workloads x " << campaign.policies.size() << " policies x "
              << opts.reps << " reps...\n";
    bench::EnvExports exports;
    exp::CampaignRunner runner({.threads = opts.threads});
    const exp::CampaignResult result = runner.run(campaign, exports.with());

    for (const auto& spec : campaign.workloads) {
        std::cout << "\n=== workload " << spec.name << " ===\n";
        common::Table table(
            {"policy", "TT (quanta)", "TT speedup vs linux", "fairness", "migr/quantum"});
        const double linux_tt =
            result.find(spec.name, "linux")->result.mean_metrics.turnaround_quanta;
        for (const auto& policy : campaign.policies) {
            const exp::CellResult* cell = result.find(spec.name, policy.label);
            const workloads::RepeatedResult& r = cell->result;
            table.row()
                .add(policy.label)
                .add(r.mean_metrics.turnaround_quanta, 1)
                .add(linux_tt > 0.0 ? linux_tt / r.mean_metrics.turnaround_quanta : 0.0, 3)
                .add(r.mean_metrics.fairness, 3)
                .add(static_cast<double>(r.exemplar.migrations) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, r.exemplar.quanta_executed)),
                     2);
        }
        table.print(std::cout);
    }
    std::cout << "\nreading guide: random churn loses badly (pairing matters); informed\n"
                 "selectors agree at n=8 (the optimum is small); hysteresis suppresses\n"
                 "near-tie oscillation that would otherwise pay migration costs.\n";
    return 0;
}
