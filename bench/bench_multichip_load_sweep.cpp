// Multi-chip load sweep: the scale-unlock acceptance bench.  Sweeps the
// platform from 1 to 4 chips at SMT widths 2 and 4 under a fixed offered
// load, comparing the topology-aware SYNPA policy against random churn and
// the no-migration baseline on an open system.
//
// Per (chips, width) the arrival rate is load * capacity / service, so
// every platform size sees the same *relative* pressure; what changes is
// the topology the allocator must respect — random pays the cross-chip
// cold-cache window on a large fraction of its moves, SYNPA's balancing
// pass migrates across chips only when the predicted benefit beats the
// penalty.  Expected: SYNPA's mean slowdown beats random at every chip
// count, and its cross-chip migration rate stays near zero.
//
// Knobs: SYNPA_MULTICHIP_CHIPS (comma list, default "1,2,3,4"),
// SYNPA_MULTICHIP_WAYS (default "2,4"), SYNPA_MULTICHIP_LOAD (default 0.9),
// SYNPA_SCENARIO_SERVICE_QUANTA / SYNPA_SCENARIO_HORIZON, plus the usual
// SYNPA_BENCH_* scales.  SYNPA_BENCH_CSV exports the per-cell summary rows
// (with the chips column).
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/scenario_grid.hpp"
#include "scenario/scenario.hpp"

namespace {

std::vector<int> int_list(const char* env, const char* fallback) {
    const std::string raw = synpa::common::env_string(env, fallback);
    std::vector<int> out;
    std::stringstream ss(raw);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty()) out.push_back(std::stoi(item));
    return out;
}

}  // namespace

int main() {
    using namespace synpa;
    bench::print_header("Multi-chip load sweep",
                        "1 -> 4 chips at SMT-2/SMT-4: topology-aware SYNPA vs baselines");

    const uarch::SimConfig base = uarch::SimConfig::from_env();
    const workloads::MethodologyOptions opts = bench::default_methodology();
    const auto service_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_SCENARIO_SERVICE_QUANTA", 30));
    const auto horizon =
        static_cast<std::uint64_t>(common::env_int("SYNPA_SCENARIO_HORIZON", 150));
    const double load = common::env_double("SYNPA_MULTICHIP_LOAD", 0.9);
    const std::vector<int> chip_counts = int_list("SYNPA_MULTICHIP_CHIPS", "1,2,3,4");
    const std::vector<int> widths = int_list("SYNPA_MULTICHIP_WAYS", "2,4");

    const std::vector<std::string> mix = {"mcf",   "bwaves", "leela_r",
                                          "gobmk", "nab_r",  "exchange2_r"};

    // One shared CSV stream across every (chips, width) campaign: the
    // aggregator writes its header once, and every row carries the chips
    // column, so downstream tooling sees one coherent sweep.
    std::unique_ptr<std::ofstream> csv_stream;
    std::unique_ptr<exp::ScenarioCsvAggregator> csv;
    const std::string csv_path = common::env_string("SYNPA_BENCH_CSV", "");
    if (!csv_path.empty()) {
        csv_stream = std::make_unique<std::ofstream>(csv_path);
        if (csv_stream->is_open()) {
            csv = std::make_unique<exp::ScenarioCsvAggregator>(*csv_stream);
        } else {
            std::cerr << "warning: cannot open export file '" << csv_path
                      << "' — skipping\n";
        }
    }

    common::Table table({"chips", "ways", "policy", "done", "thruput", "mean TT",
                         "p95 TT", "slowdown", "util", "migr/q", "xchip/q"});
    double wall = 0.0;
    bool synpa_beats_random_everywhere = true;

    for (const int width : widths) {
        for (const int chips : chip_counts) {
            uarch::SimConfig cfg = base;
            cfg.num_chips = chips;
            cfg.smt_ways = width;
            const double capacity = static_cast<double>(chips) *
                                    static_cast<double>(cfg.cores) *
                                    static_cast<double>(width);

            scenario::ScenarioSpec spec;
            spec.name = "chips-" + std::to_string(chips) + "-w" + std::to_string(width);
            spec.process = scenario::ArrivalProcess::kPoisson;
            spec.app_mix = mix;
            spec.service_quanta = service_quanta;
            spec.horizon_quanta = horizon;
            spec.seed = opts.seed;
            spec.arrival_rate = load * capacity / static_cast<double>(service_quanta);
            spec.initial_tasks = static_cast<std::uint64_t>(
                std::min(load * capacity, capacity));

            exp::ScenarioCampaign campaign;
            campaign.name = "multichip-" + spec.name;
            campaign.configs = {cfg};
            campaign.scenarios = {spec};
            // The `policy=` axis: registered names expanded by the grid
            // runner (sched/registry.hpp).  "linux" is the no-migration
            // baseline the earlier hand-wired column spelled out.
            campaign.policy_names = {"linux", "random", "synpa"};
            campaign.reps = opts.reps;
            campaign.needs_training = true;
            campaign.trainer = bench::default_trainer(opts);

            std::vector<exp::ScenarioAggregator*> aggregators;
            if (csv) aggregators.push_back(csv.get());
            exp::ScenarioGridRunner runner({.threads = opts.threads});
            const exp::ScenarioGridResult result = runner.run(campaign, aggregators);
            wall += result.wall_seconds;

            double random_slowdown = 0.0, synpa_slowdown = 0.0;
            for (const auto& cell : result.cells) {
                const auto& s = cell.summary;
                if (cell.policy == "random") random_slowdown = s.mean_slowdown;
                if (cell.policy == "synpa") synpa_slowdown = s.mean_slowdown;
                table.row()
                    .add(std::to_string(cell.chips))
                    .add(std::to_string(cell.smt_ways))
                    .add(cell.policy)
                    .add(std::to_string(s.completed_tasks) + "/" +
                         std::to_string(s.planned_tasks))
                    .add(s.throughput, 3)
                    .add(s.mean_turnaround, 1)
                    .add(s.p95_turnaround, 1)
                    .add(s.mean_slowdown, 2)
                    .add(s.mean_utilization, 2)
                    .add(s.migrations_per_quantum, 2)
                    .add(s.cross_chip_per_quantum, 2);
            }
            if (synpa_slowdown >= random_slowdown)
                synpa_beats_random_everywhere = false;
        }
    }

    table.print(std::cout);
    std::cout << "\nsynpa beats random on mean slowdown at every (chips, width): "
              << (synpa_beats_random_everywhere ? "yes" : "NO") << "\n"
              << "expected: yes — informed per-chip grouping plus benefit-gated\n"
                 "cross-chip moves; random churn pays the cold remote-cache window\n"
                 "on a large share of its migrations.  wall " << wall << " s\n";
    return synpa_beats_random_everywhere ? 0 : 1;
}
